// Package lockhold enforces the dramstacksd store invariant in code
// instead of prose: no slow or blocking operation may run while an
// internal/service mutex is held. Holding a lock across an fsync, a
// journal append, a simulation, or a blocking channel operation would
// stall every request that touches the same lock — the exact contention
// the durable store's in-memory mirror was built to avoid.
//
// Within each function, the analyzer tracks sync.Mutex/RWMutex
// Lock/Unlock pairs (including `defer mu.Unlock()`, which holds to
// function end) and flags, while any lock is held:
//
//   - exp.RunSpec calls (a whole simulation under a lock);
//   - (*os.File).Write / Sync (journal appends and fsyncs);
//   - calls to *Store journal methods (append, AppendJob, AppendResult,
//     AppendSweep, Checkpoint);
//   - channel sends and receives, and select statements without a
//     default clause.
//
// Methods named *Locked are exempt as callees (the convention marks
// them as requiring the caller to hold the lock; their own bodies are
// analyzed like any other function). The one deliberate exception — the
// store serializing journal appends under its own mutex — is
// acknowledged with //dramvet:allow lockhold(...) at the definition.
package lockhold

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"dramstacks/internal/analysis"
	"dramstacks/internal/analysis/astutil"
)

// Analyzer is the lockhold pass.
var Analyzer = &analysis.Analyzer{
	Name: "lockhold",
	Doc: "forbid blocking work (fsync, journal appends, RunSpec, channel ops) under a service mutex\n\n" +
		"internal/service locks guard in-memory state only; I/O and simulations must happen\n" +
		"outside the critical section (the durable store's mirror exists for exactly this).",
	Run: run,
}

// storeMethods are the *Store journal entry points that fsync.
var storeMethods = map[string]bool{
	"append":       true,
	"AppendJob":    true,
	"AppendResult": true,
	"AppendSweep":  true,
	"Checkpoint":   true,
}

func run(pass *analysis.Pass) (any, error) {
	if !servicePackage(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if ok && fd.Body != nil {
				checkFunc(pass, fd.Body)
			}
			return true
		})
	}
	return nil, nil
}

// checkFunc walks one function body in statement order, tracking which
// mutexes are held.
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	held := make(map[string]bool) // rendered lock expr → held
	walkBlock(pass, body, held)
}

func walkBlock(pass *analysis.Pass, block *ast.BlockStmt, held map[string]bool) {
	// Locks taken inside this block are released when it ends (a
	// conservative approximation: an early Unlock is honored, a Lock
	// leaking out of a block is rare and would be flagged in callers).
	local := make(map[string]bool, len(held))
	for k, v := range held {
		local[k] = v
	}
	for _, stmt := range block.List {
		walkStmt(pass, stmt, local)
	}
}

func walkStmt(pass *analysis.Pass, stmt ast.Stmt, held map[string]bool) {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if key, op, ok := lockOp(pass, s.X); ok {
			switch op {
			case "Lock", "RLock":
				held[key] = true
			case "Unlock", "RUnlock":
				delete(held, key)
			}
			return
		}
		checkExpr(pass, s.X, held)
	case *ast.DeferStmt:
		if _, op, ok := lockOp(pass, s.Call); ok && (op == "Unlock" || op == "RUnlock") {
			// Deferred unlock: the lock stays held for the rest of the walk.
			return
		}
		checkExpr(pass, s.Call, held)
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			checkExpr(pass, rhs, held)
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			checkExpr(pass, r, held)
		}
	case *ast.SendStmt:
		if anyHeld(held) {
			pass.Reportf(s.Pos(),
				"channel send while %s is held: blocking operations must not run under a "+
					"service mutex (or annotate //dramvet:allow lockhold(reason))", heldName(held))
		}
	case *ast.SelectStmt:
		hasDefault := false
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault && anyHeld(held) {
			pass.Reportf(s.Pos(),
				"blocking select while %s is held: blocking operations must not run under a "+
					"service mutex (or annotate //dramvet:allow lockhold(reason))", heldName(held))
		}
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok {
				for _, b := range cc.Body {
					walkStmt(pass, b, held)
				}
			}
		}
	case *ast.IfStmt:
		if s.Init != nil {
			walkStmt(pass, s.Init, held)
		}
		checkExpr(pass, s.Cond, held)
		walkBlock(pass, s.Body, held)
		if s.Else != nil {
			walkStmt(pass, s.Else, held)
		}
	case *ast.ForStmt:
		walkBlock(pass, s.Body, held)
	case *ast.RangeStmt:
		walkBlock(pass, s.Body, held)
	case *ast.BlockStmt:
		walkBlock(pass, s, held)
	case *ast.SwitchStmt:
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				for _, b := range cc.Body {
					walkStmt(pass, b, held)
				}
			}
		}
	case *ast.TypeSwitchStmt:
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				for _, b := range cc.Body {
					walkStmt(pass, b, held)
				}
			}
		}
	case *ast.GoStmt:
		// A goroutine body runs without the caller's locks.
	}
}

// checkExpr flags blocking operations in an expression evaluated while
// locks are held: receives, RunSpec, file writes/fsyncs, store appends.
func checkExpr(pass *analysis.Pass, e ast.Expr, held map[string]bool) {
	if e == nil || !anyHeld(held) {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false // deferred/assigned closures run elsewhere
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				pass.Reportf(x.Pos(),
					"channel receive while %s is held: blocking operations must not run under "+
						"a service mutex (or annotate //dramvet:allow lockhold(reason))", heldName(held))
			}
		case *ast.CallExpr:
			checkCall(pass, x, held)
		}
		return true
	})
}

// servicePackage reports whether path (possibly a vet test-variant
// spelling) is the internal/service package or its tests.
func servicePackage(path string) bool {
	if i := strings.IndexByte(path, ' '); i >= 0 {
		path = path[:i]
	}
	path = strings.TrimSuffix(path, ".test")
	path = strings.TrimSuffix(path, "_test")
	return path == "internal/service" || strings.HasSuffix(path, "/internal/service")
}

// isRunSpec matches exp.RunSpec by resolved function object: package
// path ending in "exp" (the real tree's dramstacks/internal/exp, or a
// fixture's local exp package) and name RunSpec.
func isRunSpec(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := astutil.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "RunSpec" {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	p := fn.Pkg().Path()
	return p == "exp" || strings.HasSuffix(p, "/exp")
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr, held map[string]bool) {
	if isRunSpec(pass, call) {
		pass.Reportf(call.Pos(),
			"exp.RunSpec while %s is held: a simulation must never run under a service mutex "+
				"(or annotate //dramvet:allow lockhold(reason))", heldName(held))
		return
	}
	sel, ok := astutil.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	recvType := func() types.Type {
		tv, ok := pass.TypesInfo.Types[sel.X]
		if !ok {
			return nil
		}
		return tv.Type
	}
	switch {
	case (sel.Sel.Name == "Sync" || sel.Sel.Name == "Write") && recvType() != nil && astutil.IsNamed(recvType(), "os", "File"):
		pass.Reportf(call.Pos(),
			"(*os.File).%s while %s is held: journal I/O must not run under a service mutex "+
				"(or annotate //dramvet:allow lockhold(reason))", sel.Sel.Name, heldName(held))
	case storeMethods[sel.Sel.Name] && recvType() != nil && isStore(recvType()):
		pass.Reportf(call.Pos(),
			"store %s (journal append + fsync) while %s is held: persist outside the critical "+
				"section (or annotate //dramvet:allow lockhold(reason))", sel.Sel.Name, heldName(held))
	}
}

// isStore matches the package's durable store type by name, so the
// analyzer works both on internal/service and on its test fixtures.
func isStore(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	return ok && named.Obj().Name() == "Store"
}

// lockOp recognizes expr as a mutex Lock/Unlock call and returns a
// stable key for the lock expression.
func lockOp(pass *analysis.Pass, e ast.Expr) (key, op string, ok bool) {
	call, isCall := astutil.Unparen(e).(*ast.CallExpr)
	if !isCall || len(call.Args) != 0 {
		return "", "", false
	}
	sel, isSel := astutil.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	tv, found := pass.TypesInfo.Types[sel.X]
	if !found || tv.Type == nil {
		return "", "", false
	}
	if !astutil.IsNamed(tv.Type, "sync", "Mutex") && !astutil.IsNamed(tv.Type, "sync", "RWMutex") {
		return "", "", false
	}
	return exprKey(sel.X), sel.Sel.Name, true
}

// exprKey renders a lock expression ("s.mu") as a comparison key.
func exprKey(e ast.Expr) string {
	switch x := astutil.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprKey(x.X) + "." + x.Sel.Name
	default:
		return "lock"
	}
}

func anyHeld(held map[string]bool) bool { return len(held) > 0 }

// heldName names one held lock for the diagnostic (sorted for
// determinism when several are held).
func heldName(held map[string]bool) string {
	best := ""
	for k := range held {
		if best == "" || k < best {
			best = k
		}
	}
	return best
}
