// Package exp is a lockhold fixture standing in for
// dramstacks/internal/exp: RunSpec is the entry point that must never
// run under a service mutex.
package exp

type Spec struct{ Seed int64 }

type Result struct{ Cycles int64 }

func RunSpec(s Spec) (*Result, error) { return &Result{}, nil }
