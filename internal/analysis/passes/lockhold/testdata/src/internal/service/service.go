// Package service is a lockhold fixture standing in for the real
// internal/service: locks guard in-memory state only; I/O, simulations,
// and blocking channel operations happen outside the critical section.
package service

import (
	"os"
	"sync"

	"exp"
)

type Store struct {
	mu      sync.Mutex
	journal *os.File
}

// The fixture mirror of the real store's one deliberate exception.
//
//dramvet:allow lockhold(st.mu exists to serialize journal appends; I/O under this lock is the design)
func (st *Store) append(id string) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, err := st.journal.Write([]byte(id)); err != nil {
		return err
	}
	return st.journal.Sync()
}

func (st *Store) AppendJob(id string) error { return st.append(id) }

type Server struct {
	mu    sync.Mutex
	st    *Store
	jobs  chan string
	specs map[string]exp.Spec
}

func (s *Server) badRun(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	exp.RunSpec(s.specs[id]) // want `exp.RunSpec while s.mu is held`
}

func (s *Server) badJournal(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.st.journal.Write([]byte(id)); err != nil { // want `\(\*os.File\).Write while s.mu is held`
		return err
	}
	return s.st.journal.Sync() // want `\(\*os.File\).Sync while s.mu is held`
}

func (s *Server) badPersist(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.st.AppendJob(id) // want `store AppendJob \(journal append \+ fsync\) while s.mu is held`
}

func (s *Server) badSend(id string) {
	s.mu.Lock()
	s.jobs <- id // want `channel send while s.mu is held`
	s.mu.Unlock()
}

func (s *Server) badRecv() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return <-s.jobs // want `channel receive while s.mu is held`
}

func (s *Server) badSelect(done chan struct{}) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want `blocking select while s.mu is held`
	case <-done:
	case id := <-s.jobs:
		_ = id
	}
}

// Clean: snapshot under the lock, then do the slow work outside it —
// the pattern the analyzer exists to protect.
func (s *Server) goodUnlockFirst(id string) error {
	s.mu.Lock()
	spec := s.specs[id]
	s.mu.Unlock()
	if _, err := exp.RunSpec(spec); err != nil {
		return err
	}
	return s.st.AppendJob(id)
}

// Clean: a select with a default clause cannot block.
func (s *Server) goodNonBlocking() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case id := <-s.jobs:
		_ = id
		return true
	default:
		return false
	}
}

// Clean: a goroutine body runs without the caller's locks.
func (s *Server) goodGoroutine(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		s.jobs <- id
	}()
}
