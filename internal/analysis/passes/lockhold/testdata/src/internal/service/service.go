// Package service is a lockhold fixture standing in for the real
// internal/service: locks guard in-memory state only; I/O, simulations,
// and blocking channel operations happen outside the critical section.
package service

import (
	"os"
	"sync"

	"exp"
)

type Store struct {
	mu      sync.Mutex
	journal *os.File
}

// The fixture mirror of the real store's one deliberate exception.
//
//dramvet:allow lockhold(st.mu exists to serialize journal appends; I/O under this lock is the design)
func (st *Store) append(id string) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, err := st.journal.Write([]byte(id)); err != nil {
		return err
	}
	return st.journal.Sync()
}

func (st *Store) AppendJob(id string) error { return st.append(id) }

type Server struct {
	mu    sync.Mutex
	st    *Store
	jobs  chan string
	specs map[string]exp.Spec
}

func (s *Server) badRun(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	exp.RunSpec(s.specs[id]) // want `exp.RunSpec while s.mu is held`
}

func (s *Server) badJournal(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.st.journal.Write([]byte(id)); err != nil { // want `\(\*os.File\).Write while s.mu is held`
		return err
	}
	return s.st.journal.Sync() // want `\(\*os.File\).Sync while s.mu is held`
}

func (s *Server) badPersist(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.st.AppendJob(id) // want `store AppendJob \(journal append \+ fsync\) while s.mu is held`
}

func (s *Server) badSend(id string) {
	s.mu.Lock()
	s.jobs <- id // want `channel send while s.mu is held`
	s.mu.Unlock()
}

func (s *Server) badRecv() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return <-s.jobs // want `channel receive while s.mu is held`
}

func (s *Server) badSelect(done chan struct{}) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want `blocking select while s.mu is held`
	case <-done:
	case id := <-s.jobs:
		_ = id
	}
}

// Clean: snapshot under the lock, then do the slow work outside it —
// the pattern the analyzer exists to protect.
func (s *Server) goodUnlockFirst(id string) error {
	s.mu.Lock()
	spec := s.specs[id]
	s.mu.Unlock()
	if _, err := exp.RunSpec(spec); err != nil {
		return err
	}
	return s.st.AppendJob(id)
}

// Clean: a select with a default clause cannot block.
func (s *Server) goodNonBlocking() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case id := <-s.jobs:
		_ = id
		return true
	default:
		return false
	}
}

// Clean: a goroutine body runs without the caller's locks.
func (s *Server) goodGoroutine(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		s.jobs <- id
	}()
}

// Flow-sensitive: the unlock happens on one branch only; the path that
// skips it still holds the lock at the receive.
func (s *Server) badBranchUnlock(fast bool) string {
	s.mu.Lock()
	if fast {
		s.mu.Unlock()
	}
	return <-s.jobs // want `channel receive while s.mu is held`
}

// Flow-sensitive: a conditional second Lock self-deadlocks on the path
// where both acquisitions execute.
func (s *Server) badDoubleLock(again bool) {
	s.mu.Lock()
	if again {
		s.mu.Lock() // want `s.mu.Lock while s.mu is already held`
	}
	s.mu.Unlock()
}

// Flow-sensitive: a Lock in a loop body with no release carries over
// the back edge — the second iteration re-locks a held mutex.
func (s *Server) badLoopLock(n int) {
	for i := 0; i < n; i++ {
		s.mu.Lock() // want `s.mu.Lock while s.mu is already held`
	}
}

// Clean: each branch releases before the blocking work — a
// statement-order walker would charge the send anyway.
func (s *Server) goodBothBranches(fast bool, id string) {
	s.mu.Lock()
	if fast {
		s.mu.Unlock()
	} else {
		s.mu.Unlock()
	}
	s.jobs <- id
}

// Clean: the early-return path never reaches the simulation, and the
// fallthrough path unlocks first.
func (s *Server) goodEarlyReturn(id string) error {
	s.mu.Lock()
	if id == "" {
		s.mu.Unlock()
		return nil
	}
	spec := s.specs[id]
	s.mu.Unlock()
	_, err := exp.RunSpec(spec)
	return err
}

// Clean: lock and unlock balanced inside every loop iteration, so
// nothing is held at the send after the loop.
func (s *Server) goodLoopBalanced(ids []string) {
	for _, id := range ids {
		s.mu.Lock()
		s.specs[id] = exp.Spec{}
		s.mu.Unlock()
	}
	s.jobs <- "done"
}

// Clean: the panic path cannot fall through to the send.
func (s *Server) goodPanicPath(ok bool, id string) {
	s.mu.Lock()
	if !ok {
		s.mu.Unlock()
		panic("bad id")
	}
	s.specs[id] = exp.Spec{}
	s.mu.Unlock()
	s.jobs <- id
}

// An RWMutex-guarded index for the read-to-write upgrade shape.
type Index struct {
	mu sync.RWMutex
	m  map[string]int
}

// Clean: shared read under RLock.
func (ix *Index) goodSharedRead(k string) int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.m[k]
}

// Flow-sensitive: upgrading RLock to Lock in place self-deadlocks
// (sync.RWMutex write-lock waits for all readers, including this one).
func (ix *Index) badUpgrade(k string) {
	ix.mu.RLock()
	if _, ok := ix.m[k]; !ok {
		ix.mu.Lock() // want `ix.mu.Lock while ix.mu is already held`
		ix.m[k] = 0
		ix.mu.Unlock()
	}
	ix.mu.RUnlock()
}
