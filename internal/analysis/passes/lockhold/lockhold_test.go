package lockhold_test

import (
	"testing"

	"dramstacks/internal/analysis/analysistest"
	"dramstacks/internal/analysis/passes/lockhold"
)

func TestLockHold(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lockhold.Analyzer, "internal/service")
}
