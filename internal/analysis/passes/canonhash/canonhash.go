// Package canonhash enforces the one-true-path rule for content
// hashing: any bytes that flow into a spec/sweep hash must come from
// the canonical encoder (exp.Spec.Canonical and friends), never from
// raw encoding/json.Marshal. Raw marshaling of a struct is
// field-order-, tag-, and version-sensitive, so two semantically
// identical specs could hash differently — exactly the corruption class
// the dramstacksd recovery validation defends against.
//
// Mechanically: inside each function, the analyzer traces the data
// argument of crypto hash sinks — sha256.Sum256(...), and Write calls
// on values obtained from a crypto/hash constructor (sha256.New etc.)
// or typed hash.Hash — through local single-assignment variables,
// conversions, and slicing. If the traced origin is a call to
// encoding/json Marshal or MarshalIndent, the hash site is flagged.
// The analysis is intraprocedural by design: the canonical encoder
// itself marshals a sorted map internally and returns the bytes, which
// is invisible (and fine) at its call sites.
package canonhash

import (
	"go/ast"
	"go/types"
	"strings"

	"dramstacks/internal/analysis"
	"dramstacks/internal/analysis/astutil"
)

// Analyzer is the canonhash pass.
var Analyzer = &analysis.Analyzer{
	Name: "canonhash",
	Doc: "require the canonical encoder for bytes flowing into spec/sweep hashes\n\n" +
		"Content addresses (spec_hash, sweep hashes) must be computed over the canonical\n" +
		"JSON encoding, never raw json.Marshal output: raw marshaling is field-order- and\n" +
		"version-sensitive, so identical specs could hash differently.",
	Run: run,
}

// hashPackages are the crypto packages whose Sum*/New* functions are
// hash sinks/constructors.
var hashPackages = map[string]bool{
	"crypto/sha256": true,
	"crypto/sha512": true,
	"crypto/sha1":   true,
	"crypto/md5":    true,
	"hash/fnv":      true,
	"hash/crc32":    true,
	"hash/crc64":    true,
	"hash/maphash":  true,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil, nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	defs := singleAssignments(pass, fd.Body)
	writers := hashWriters(pass, defs)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		sel, ok := astutil.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch {
		case strings.HasPrefix(sel.Sel.Name, "Sum") && hashPackages[astutil.PackagePath(pass.TypesInfo, sel)]:
			// sha256.Sum256(data) and friends.
			checkOrigin(pass, call.Args[0], defs)
		case sel.Sel.Name == "Write" && isHashWriter(pass, sel.X, writers):
			// h.Write(data) on a hash.Hash.
			checkOrigin(pass, call.Args[0], defs)
		}
		return true
	})
}

// checkOrigin traces data to its origin and flags raw json encodings.
func checkOrigin(pass *analysis.Pass, data ast.Expr, defs map[types.Object]ast.Expr) {
	origin := trace(pass, data, defs, 0)
	call, ok := origin.(*ast.CallExpr)
	if !ok {
		return
	}
	for _, name := range []string{"Marshal", "MarshalIndent"} {
		if astutil.IsPkgFunc(pass.TypesInfo, call, "encoding/json", name) {
			pass.Reportf(data.Pos(),
				"hashed bytes originate from raw json.%s: content hashes must be computed "+
					"over the canonical encoding (exp.Spec.Canonical), or annotate "+
					"//dramvet:allow canonhash(reason)", name)
			return
		}
	}
}

// trace unwraps conversions, slicing, parens, and single-assignment
// locals to find where a value was produced.
func trace(pass *analysis.Pass, e ast.Expr, defs map[types.Object]ast.Expr, depth int) ast.Expr {
	if depth > 16 {
		return e
	}
	switch x := astutil.Unparen(e).(type) {
	case *ast.CallExpr:
		// A conversion like []byte(s) is transparent.
		if tv, ok := pass.TypesInfo.Types[x.Fun]; ok && tv.IsType() && len(x.Args) == 1 {
			return trace(pass, x.Args[0], defs, depth+1)
		}
		return x
	case *ast.SliceExpr:
		return trace(pass, x.X, defs, depth+1)
	case *ast.Ident:
		obj := pass.TypesInfo.ObjectOf(x)
		if rhs, ok := defs[obj]; ok {
			return trace(pass, rhs, defs, depth+1)
		}
		return x
	default:
		return x
	}
}

// singleAssignments maps each local object assigned exactly once in
// the function body to its defining expression; multiply-assigned
// locals are excluded (their origin is ambiguous).
func singleAssignments(pass *analysis.Pass, body *ast.BlockStmt) map[types.Object]ast.Expr {
	count := make(map[types.Object]int)
	rhs := make(map[types.Object]ast.Expr)
	ast.Inspect(body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		record := func(lhs, def ast.Expr) {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				return
			}
			obj := pass.TypesInfo.ObjectOf(id)
			if obj == nil {
				return
			}
			count[obj]++
			rhs[obj] = def
		}
		switch {
		case len(asg.Lhs) == len(asg.Rhs):
			for i, lhs := range asg.Lhs {
				record(lhs, asg.Rhs[i])
			}
		case len(asg.Rhs) == 1:
			// Multi-value form `b, err := json.Marshal(v)`: the first
			// result carries the data; tracing later results to the same
			// call is harmless (they are never hashed).
			for _, lhs := range asg.Lhs {
				record(lhs, asg.Rhs[0])
			}
		}
		return true
	})
	out := make(map[types.Object]ast.Expr)
	for obj, n := range count {
		if n == 1 {
			out[obj] = rhs[obj]
		}
	}
	return out
}

// hashWriters collects the objects holding values produced by a crypto
// hash constructor (sha256.New() etc.), so Write calls on them are
// treated as hash sinks.
func hashWriters(pass *analysis.Pass, defs map[types.Object]ast.Expr) map[types.Object]bool {
	writers := make(map[types.Object]bool)
	for obj, rhs := range defs {
		call, ok := astutil.Unparen(rhs).(*ast.CallExpr)
		if !ok {
			continue
		}
		sel, ok := astutil.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			continue
		}
		if strings.HasPrefix(sel.Sel.Name, "New") && hashPackages[astutil.PackagePath(pass.TypesInfo, sel)] {
			writers[obj] = true
		}
	}
	return writers
}

// isHashWriter reports whether recv denotes a hash sink: a local bound
// to a crypto constructor, or any value typed hash.Hash.
func isHashWriter(pass *analysis.Pass, recv ast.Expr, writers map[types.Object]bool) bool {
	if id, ok := astutil.Unparen(recv).(*ast.Ident); ok {
		if writers[pass.TypesInfo.ObjectOf(id)] {
			return true
		}
	}
	tv, ok := pass.TypesInfo.Types[recv]
	if !ok || tv.Type == nil {
		return false
	}
	return astutil.IsNamed(tv.Type, "hash", "Hash") || isHashInterface(tv.Type)
}

// isHashInterface reports whether t is an interface embedding the
// hash.Hash method set (Sum/Reset/Size/BlockSize + io.Writer).
func isHashInterface(t types.Type) bool {
	iface, ok := t.Underlying().(*types.Interface)
	if !ok {
		return false
	}
	need := map[string]bool{"Write": false, "Sum": false, "Reset": false, "Size": false, "BlockSize": false}
	for i := 0; i < iface.NumMethods(); i++ {
		if _, ok := need[iface.Method(i).Name()]; ok {
			need[iface.Method(i).Name()] = true
		}
	}
	for _, got := range need {
		if !got {
			return false
		}
	}
	return true
}
