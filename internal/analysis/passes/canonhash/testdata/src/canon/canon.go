// Package canon is a canonhash fixture: bytes flowing into content
// hashes must come from a canonical encoder, never raw json.Marshal.
package canon

import (
	"crypto/sha256"
	"encoding/json"
	"hash"
	"sort"
)

type spec struct {
	A, B int
	Tags map[string]string
}

// Flagged: hashing a raw marshal of a struct is field-order- and
// version-sensitive.
func badSum(s spec) [32]byte {
	b, _ := json.Marshal(s)
	return sha256.Sum256(b) // want `raw json.Marshal`
}

// Flagged: the taint survives conversions and slicing.
func badConverted(s spec) [32]byte {
	b, _ := json.Marshal(s)
	return sha256.Sum256([]byte(string(b))[:]) // want `raw json.Marshal`
}

// Flagged: Write on a constructed hash is a sink too.
func badWriter(s spec) []byte {
	h := sha256.New()
	raw, _ := json.MarshalIndent(s, "", " ")
	h.Write(raw) // want `raw json.MarshalIndent`
	return h.Sum(nil)
}

// Flagged: hash.Hash-typed sinks are recognized without a visible
// constructor.
func badIface(h hash.Hash, s spec) {
	b, _ := json.Marshal(s)
	h.Write(b) // want `raw json.Marshal`
}

// Clean: hashing the canonical encoding.
func goodCanonical(s spec) [32]byte {
	return sha256.Sum256(canonical(s))
}

// canonical is the fixture's stand-in for exp.Spec.Canonical:
// marshaling a deterministically keyed form inside the encoder is the
// point; only its output may be hashed.
func canonical(s spec) []byte {
	keys := make([]string, 0, len(s.Tags))
	for k := range s.Tags {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	b, _ := json.Marshal(map[string]any{"a": s.A, "b": s.B, "tags": keys})
	return b
}

// Clean: bytes of unknown provenance are the caller's problem, not a
// raw-marshal violation.
func goodDirect(data []byte) [32]byte {
	return sha256.Sum256(data)
}

// Clean: acknowledged with a recorded reason.
func allowed(s spec) [32]byte {
	b, _ := json.Marshal(s)
	//dramvet:allow canonhash(checksum of a transient debug dump; never stored or compared across versions)
	return sha256.Sum256(b)
}
