package canonhash_test

import (
	"testing"

	"dramstacks/internal/analysis/analysistest"
	"dramstacks/internal/analysis/passes/canonhash"
)

func TestCanonHash(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), canonhash.Analyzer, "canon")
}
