// Package errenvelope enforces the unified /v1 error contract: every
// error response of the dramstacksd HTTP surface is the JSON envelope
// {"error":{"code":…,"message":…}}, emitted through the writeError
// helper. A stray http.Error or bare WriteHeader(4xx/5xx) would hand a
// client plain text where every other path speaks the envelope,
// breaking pkg/client's APIError decoding.
//
// Within internal/service, the analyzer flags:
//
//   - any call to net/http.Error;
//   - any WriteHeader call on an http.ResponseWriter whose status is a
//     constant ≥ 400.
//
// Non-constant status codes (response recorders, proxies, the helpers
// themselves) are not flagged; writeError/writeJSON are additionally
// exempt by name since they implement the envelope.
package errenvelope

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"dramstacks/internal/analysis"
	"dramstacks/internal/analysis/astutil"
)

// Analyzer is the errenvelope pass.
var Analyzer = &analysis.Analyzer{
	Name: "errenvelope",
	Doc: "require the unified {\"error\":{code,message}} envelope on every /v1 error path\n\n" +
		"Handlers must emit errors through writeError, never http.Error or a bare\n" +
		"WriteHeader with a 4xx/5xx constant.",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	if !servicePackage(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fd.Name.Name == "writeError" || fd.Name.Name == "writeJSON" {
				continue // the envelope implementation itself
			}
			checkFunc(pass, fd)
		}
	}
	return nil, nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if astutil.IsPkgFunc(pass.TypesInfo, call, "net/http", "Error") {
			pass.Reportf(call.Pos(),
				"http.Error bypasses the unified /v1 error envelope; use writeError "+
					"(or annotate //dramvet:allow errenvelope(reason))")
			return true
		}
		sel, ok := astutil.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "WriteHeader" || len(call.Args) != 1 {
			return true
		}
		if !isResponseWriter(pass, sel.X) {
			return true
		}
		if code, ok := constInt(pass, call.Args[0]); ok && code >= 400 {
			pass.Reportf(call.Pos(),
				"bare WriteHeader(%d) bypasses the unified /v1 error envelope; use writeError "+
					"(or annotate //dramvet:allow errenvelope(reason))", code)
		}
		return true
	})
}

// isResponseWriter reports whether the receiver is (or embeds) an
// http.ResponseWriter.
func isResponseWriter(pass *analysis.Pass, recv ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[recv]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if astutil.IsNamed(t, "net/http", "ResponseWriter") {
		return true
	}
	// Interfaces with the ResponseWriter method set, and structs
	// embedding one (response recorders), also write headers.
	if iface, ok := t.Underlying().(*types.Interface); ok {
		for i := 0; i < iface.NumMethods(); i++ {
			if iface.Method(i).Name() == "WriteHeader" {
				return true
			}
		}
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if st, ok := t.Underlying().(*types.Struct); ok {
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if f.Embedded() && astutil.IsNamed(f.Type(), "net/http", "ResponseWriter") {
				return true
			}
		}
	}
	return false
}

// constInt evaluates e as a constant integer.
func constInt(pass *analysis.Pass, e ast.Expr) (int64, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(tv.Value)
}

// servicePackage reports whether path (possibly a vet test-variant
// spelling) is the internal/service package or its tests.
func servicePackage(path string) bool {
	if i := strings.IndexByte(path, ' '); i >= 0 {
		path = path[:i]
	}
	path = strings.TrimSuffix(path, ".test")
	path = strings.TrimSuffix(path, "_test")
	return path == "internal/service" || strings.HasSuffix(path, "/internal/service")
}
