package errenvelope_test

import (
	"testing"

	"dramstacks/internal/analysis/analysistest"
	"dramstacks/internal/analysis/passes/errenvelope"
)

func TestErrEnvelope(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), errenvelope.Analyzer, "internal/service")
}
