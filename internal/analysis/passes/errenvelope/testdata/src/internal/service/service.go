// Package service is an errenvelope fixture standing in for the real
// internal/service: every /v1 error response is the JSON envelope
// {"error":{"code":…,"message":…}}, emitted through writeError.
package service

import (
	"encoding/json"
	"net/http"
)

type apiError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// writeError implements the envelope, so its own WriteHeader is exempt.
func writeError(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]apiError{"error": {Code: code, Message: msg}})
}

func badHandler(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed) // want `http.Error bypasses the unified /v1 error envelope`
		return
	}
	w.WriteHeader(http.StatusBadRequest) // want `bare WriteHeader\(400\) bypasses the unified /v1 error envelope`
}

func goodHandler(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "use POST")
		return
	}
	w.WriteHeader(http.StatusNoContent) // success statuses are fine
}

// Clean: acknowledged for the whole function with a recorded reason.
//
//dramvet:allow errenvelope(plain-text probe endpoint consumed by load balancers, not pkg/client)
func legacyProbe(w http.ResponseWriter, r *http.Request) {
	http.Error(w, "shutting down", http.StatusServiceUnavailable)
}
