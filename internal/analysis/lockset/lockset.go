// Package lockset is the held-lock dataflow shared by the lockhold and
// lockorder passes: a forward may-analysis over an internal/analysis/cfg
// graph that computes, for every node of a function body, the set of
// sync.Mutex/RWMutex locks that may be held when the node executes.
//
// Lock identity is tracked at two granularities:
//
//   - ExprKey, the rendered lock expression ("s.mu"), keys the
//     intra-function dataflow — two distinct receiver expressions are
//     two locks, so a function locking jobA.mu then jobB.mu is not
//     confused with a re-lock;
//   - TypeKey, the owning named type plus field name ("Server.mu"),
//     identifies a lock class across functions for the interprocedural
//     lock-order graph ("" when the mutex is not a named struct field).
//
// The join is the union of held sets (may-held): a lock released on one
// branch but not another is still held at the merge. A deferred unlock
// keeps its lock in the set for the rest of the function — the lock is
// genuinely held until return.
package lockset

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"dramstacks/internal/analysis/astutil"
	"dramstacks/internal/analysis/cfg"
)

// Mode records how a lock is held.
type Mode uint8

const (
	Read  Mode = 1 << iota // RLock
	Write                  // Lock
)

// Lock identifies one mutex.
type Lock struct {
	ExprKey string // rendered expression, e.g. "s.mu"
	TypeKey string // owning type + field, e.g. "Server.mu"; "" if unknown
}

// Set maps ExprKey → how that lock is held.
type Set map[string]Entry

// Entry is one held lock.
type Entry struct {
	Lock Lock
	Mode Mode
}

// Empty reports whether no lock is held.
func (s Set) Empty() bool { return len(s) == 0 }

// Names returns the held lock expressions, sorted.
func (s Set) Names() []string {
	out := make([]string, 0, len(s))
	for k := range s {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func (s Set) clone() Set {
	c := make(Set, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

func (s Set) equal(o Set) bool {
	if len(s) != len(o) {
		return false
	}
	for k, v := range s {
		if ov, ok := o[k]; !ok || ov != v {
			return false
		}
	}
	return true
}

// join unions o into s, returning true when s changed.
func (s Set) join(o Set) bool {
	changed := false
	for k, v := range o {
		cur, ok := s[k]
		if !ok {
			s[k] = v
			changed = true
			continue
		}
		if merged := (Entry{Lock: cur.Lock, Mode: cur.Mode | v.Mode}); merged != cur {
			s[k] = merged
			changed = true
		}
	}
	return changed
}

// Acquire is one Lock/RLock site with the set held just before it.
type Acquire struct {
	Lock Lock
	Mode Mode
	Pos  token.Pos
	Held Set // held before this acquisition
}

// Result is the dataflow solution for one function.
type Result struct {
	// Before maps every CFG node to the set held when it executes.
	// Nodes in unreachable blocks are absent.
	Before map[ast.Node]Set
	// Acquires lists the lock acquisitions in source order.
	Acquires []Acquire
}

// Op classifies a mutex call expression.
type Op struct {
	Lock    Lock
	Method  string // Lock, Unlock, RLock, RUnlock
	Acquire bool
	Mode    Mode
}

// AsLockOp recognizes e as a sync.Mutex/RWMutex Lock/Unlock/RLock/
// RUnlock call and identifies the lock.
func AsLockOp(info *types.Info, e ast.Expr) (Op, bool) {
	call, ok := astutil.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return Op{}, false
	}
	sel, ok := astutil.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return Op{}, false
	}
	var acquire bool
	var mode Mode
	switch sel.Sel.Name {
	case "Lock":
		acquire, mode = true, Write
	case "RLock":
		acquire, mode = true, Read
	case "Unlock":
		mode = Write
	case "RUnlock":
		mode = Read
	default:
		return Op{}, false
	}
	tv, ok := info.Types[sel.X]
	if !ok || tv.Type == nil {
		return Op{}, false
	}
	if !astutil.IsNamed(tv.Type, "sync", "Mutex") && !astutil.IsNamed(tv.Type, "sync", "RWMutex") {
		return Op{}, false
	}
	return Op{
		Lock:    Lock{ExprKey: ExprKey(sel.X), TypeKey: typeKey(info, sel.X)},
		Method:  sel.Sel.Name,
		Acquire: acquire,
		Mode:    mode,
	}, true
}

// ExprKey renders a lock expression ("s.mu") as a comparison key.
func ExprKey(e ast.Expr) string {
	switch x := astutil.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return ExprKey(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return ExprKey(x.X) + "[i]"
	default:
		return "lock"
	}
}

// typeKey names the lock class by the named struct type owning the
// mutex field: for s.mu on *Server, "Server.mu". A bare identifier (a
// local or package-level mutex variable) is keyed by its name.
func typeKey(info *types.Info, e ast.Expr) string {
	switch x := astutil.Unparen(e).(type) {
	case *ast.SelectorExpr:
		tv, ok := info.Types[x.X]
		if !ok || tv.Type == nil {
			return ""
		}
		t := tv.Type
		if ptr, okp := t.(*types.Pointer); okp {
			t = ptr.Elem()
		}
		if named, okn := types.Unalias(t).(*types.Named); okn {
			return named.Obj().Name() + "." + x.Sel.Name
		}
	case *ast.Ident:
		return x.Name
	}
	return ""
}

// Analyze runs the may-held dataflow over one function graph.
func Analyze(g *cfg.Graph, info *types.Info) *Result {
	res := &Result{Before: make(map[ast.Node]Set)}

	in := make([]Set, len(g.Blocks))
	in[g.Entry.Index] = make(Set)

	// Worklist fixpoint: ascending block order for determinism.
	dirty := make([]bool, len(g.Blocks))
	dirty[g.Entry.Index] = true
	for {
		idx := -1
		for i, d := range dirty {
			if d {
				idx = i
				break
			}
		}
		if idx < 0 {
			break
		}
		dirty[idx] = false
		blk := g.Blocks[idx]
		out := transferBlock(blk, in[idx].clone(), info, nil)
		for _, succ := range blk.Succs {
			si := succ.Index
			if in[si] == nil {
				in[si] = out.clone()
				dirty[si] = true
			} else if in[si].join(out) {
				dirty[si] = true
			}
		}
	}

	// Final pass with stable in-states: record per-node sets and
	// acquisitions exactly once each.
	for _, blk := range g.Blocks {
		if in[blk.Index] == nil {
			continue // unreachable
		}
		transferBlock(blk, in[blk.Index].clone(), info, res)
	}
	sort.Slice(res.Acquires, func(i, j int) bool { return res.Acquires[i].Pos < res.Acquires[j].Pos })
	return res
}

// transferBlock applies the block's nodes to state. When res is
// non-nil, Before sets and Acquires are recorded.
func transferBlock(blk *cfg.Block, state Set, info *types.Info, res *Result) Set {
	for _, n := range blk.Nodes {
		if res != nil {
			res.Before[n] = state.clone()
		}
		switch s := n.(type) {
		case *ast.ExprStmt:
			applyOp(info, s.X, state, res)
		case *ast.DeferStmt:
			// A deferred unlock runs at return: the lock stays held for
			// the rest of the function, so the state is unchanged. A
			// deferred acquire is nonsensical; ignore it too.
		}
	}
	return state
}

func applyOp(info *types.Info, e ast.Expr, state Set, res *Result) {
	op, ok := AsLockOp(info, e)
	if !ok {
		return
	}
	key := op.Lock.ExprKey
	if op.Acquire {
		if res != nil {
			res.Acquires = append(res.Acquires, Acquire{
				Lock: op.Lock, Mode: op.Mode, Pos: e.Pos(), Held: state.clone(),
			})
		}
		cur := state[key]
		state[key] = Entry{Lock: op.Lock, Mode: cur.Mode | op.Mode}
		return
	}
	// Release. An RUnlock only clears the read bit; dropping the entry
	// entirely when no bits remain.
	cur, held := state[key]
	if !held {
		return
	}
	if rest := cur.Mode &^ op.Mode; rest != 0 {
		state[key] = Entry{Lock: cur.Lock, Mode: rest}
	} else {
		delete(state, key)
	}
}
