package lockset

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"dramstacks/internal/analysis/cfg"
)

// analyzeFunc type-checks src and runs the dataflow over the function
// named fn.
func analyzeFunc(t *testing.T, src, fn string) (*Result, *cfg.Graph, *types.Info, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "t.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Defs:  make(map[*ast.Ident]types.Object),
		Uses:  make(map[*ast.Ident]types.Object),
		Types: make(map[ast.Expr]types.TypeAndValue),
	}
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check("p", fset, []*ast.File{f}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	for _, d := range f.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Name.Name != fn {
			continue
		}
		g := cfg.New(fd.Body)
		return Analyze(g, info), g, info, fset
	}
	t.Fatalf("no func %s", fn)
	return nil, nil, nil, nil
}

// heldAtCall returns the held names before the first call whose
// rendered callee contains substr.
func heldAtCall(t *testing.T, res *Result, substr string) []string {
	t.Helper()
	for n, held := range res.Before {
		es, ok := n.(*ast.ExprStmt)
		if !ok {
			continue
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			continue
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			continue
		}
		if id, ok := sel.X.(*ast.Ident); ok && strings.Contains(id.Name+"."+sel.Sel.Name, substr) {
			return held.Names()
		}
	}
	t.Fatalf("no call matching %q", substr)
	return nil
}

const header = `package p

import "sync"

type T struct{ mu sync.Mutex }

func work()  {}
func other() {}
`

func TestStraightLine(t *testing.T) {
	res, _, _, _ := analyzeFunc(t, header+`
func f(t *T) {
	t.mu.Lock()
	p.call()
	t.mu.Unlock()
	q.call()
}
type pt struct{}
var p, q pt
func (pt) call() {}
`, "f")
	if got := heldAtCall(t, res, "p.call"); len(got) != 1 || got[0] != "t.mu" {
		t.Fatalf("held at p.call = %v, want [t.mu]", got)
	}
	if got := heldAtCall(t, res, "q.call"); len(got) != 0 {
		t.Fatalf("held at q.call = %v, want none", got)
	}
}

func TestBranchUnlockMayHeld(t *testing.T) {
	res, _, _, _ := analyzeFunc(t, header+`
func f(t *T, c bool) {
	t.mu.Lock()
	if c {
		t.mu.Unlock()
	}
	p.call()
}
type pt struct{}
var p pt
func (pt) call() {}
`, "f")
	// May-held: the no-unlock path still holds at the merge.
	if got := heldAtCall(t, res, "p.call"); len(got) != 1 {
		t.Fatalf("held at merge = %v, want [t.mu]", got)
	}
}

func TestBothBranchesUnlock(t *testing.T) {
	res, _, _, _ := analyzeFunc(t, header+`
func f(t *T, c bool) {
	t.mu.Lock()
	if c {
		t.mu.Unlock()
	} else {
		t.mu.Unlock()
	}
	p.call()
}
type pt struct{}
var p pt
func (pt) call() {}
`, "f")
	if got := heldAtCall(t, res, "p.call"); len(got) != 0 {
		t.Fatalf("held after both-branch unlock = %v, want none", got)
	}
}

func TestDeferredUnlockHeldToEnd(t *testing.T) {
	res, _, _, _ := analyzeFunc(t, header+`
func f(t *T) {
	t.mu.Lock()
	defer t.mu.Unlock()
	p.call()
}
type pt struct{}
var p pt
func (pt) call() {}
`, "f")
	if got := heldAtCall(t, res, "p.call"); len(got) != 1 {
		t.Fatalf("deferred unlock must keep the lock held: %v", got)
	}
}

func TestLoopUnlockFixpoint(t *testing.T) {
	res, _, _, _ := analyzeFunc(t, header+`
func f(t *T, n int) {
	for i := 0; i < n; i++ {
		t.mu.Lock()
		t.mu.Unlock()
	}
	p.call()
}
type pt struct{}
var p pt
func (pt) call() {}
`, "f")
	if got := heldAtCall(t, res, "p.call"); len(got) != 0 {
		t.Fatalf("balanced loop must leave nothing held: %v", got)
	}
}

func TestAcquireRecordsHeld(t *testing.T) {
	res, _, _, _ := analyzeFunc(t, header+`
type U struct{ mu sync.Mutex }
func f(t *T, u *U) {
	t.mu.Lock()
	u.mu.Lock()
	u.mu.Unlock()
	t.mu.Unlock()
}
`, "f")
	if len(res.Acquires) != 2 {
		t.Fatalf("want 2 acquires, got %d", len(res.Acquires))
	}
	second := res.Acquires[1]
	if second.Lock.ExprKey != "u.mu" || second.Lock.TypeKey != "U.mu" {
		t.Fatalf("second acquire = %+v", second.Lock)
	}
	if names := second.Held.Names(); len(names) != 1 || names[0] != "t.mu" {
		t.Fatalf("held before second acquire = %v, want [t.mu]", names)
	}
	if first := res.Acquires[0]; !first.Held.Empty() {
		t.Fatalf("held before first acquire = %v, want none", first.Held.Names())
	}
}

func TestRWModes(t *testing.T) {
	res, _, _, _ := analyzeFunc(t, `package p

import "sync"

type T struct{ mu sync.RWMutex }

func f(t *T) {
	t.mu.RLock()
	t.mu.RUnlock()
	t.mu.Lock()
	p.call()
	t.mu.Unlock()
}
type pt struct{}
var p pt
func (pt) call() {}
`, "f")
	if len(res.Acquires) != 2 {
		t.Fatalf("want 2 acquires, got %d", len(res.Acquires))
	}
	if res.Acquires[0].Mode != Read || res.Acquires[1].Mode != Write {
		t.Fatalf("modes = %v, %v", res.Acquires[0].Mode, res.Acquires[1].Mode)
	}
	if got := heldAtCall(t, res, "p.call"); len(got) != 1 {
		t.Fatalf("write lock must be held at call: %v", got)
	}
}

func TestTypeKeyForms(t *testing.T) {
	res, _, _, _ := analyzeFunc(t, `package p

import "sync"

var global sync.Mutex

func f() {
	global.Lock()
	global.Unlock()
}
`, "f")
	if len(res.Acquires) != 1 {
		t.Fatalf("want 1 acquire, got %d", len(res.Acquires))
	}
	if k := res.Acquires[0].Lock.TypeKey; k != "global" {
		t.Fatalf("bare mutex TypeKey = %q, want \"global\"", k)
	}
}

func TestUnreachableNodesAbsent(t *testing.T) {
	res, g, _, _ := analyzeFunc(t, header+`
func f(t *T) {
	return
	t.mu.Lock()
}
`, "f")
	_ = g
	if len(res.Acquires) != 0 {
		t.Fatalf("unreachable acquire must not be recorded: %+v", res.Acquires)
	}
}
