// Package astutil holds the small AST/type-resolution helpers shared by
// the dramvet passes.
package astutil

import (
	"go/ast"
	"go/types"
)

// PackagePath resolves the import path of the package a selector's
// qualifier names: for `json.Marshal`, "encoding/json". It returns ""
// when the qualifier is not a package name (e.g. a method selector).
func PackagePath(info *types.Info, sel *ast.SelectorExpr) string {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	pkgName, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return ""
	}
	return pkgName.Imported().Path()
}

// IsPkgFunc reports whether the call expression's function is the
// package-level function path.name.
func IsPkgFunc(info *types.Info, call *ast.CallExpr, path, name string) bool {
	sel, ok := Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	if PackagePath(info, sel) == path {
		return true
	}
	// Resolve through the object for dot-imports or vendored paths.
	if fn, ok := info.Uses[sel.Sel].(*types.Func); ok {
		if pkg := fn.Pkg(); pkg != nil && pkg.Path() == path && fn.Name() == name {
			return true
		}
	}
	return false
}

// Unparen strips any enclosing parentheses.
func Unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// IsNamed reports whether t (after unwrapping pointers and aliases) is
// the named type pkgPath.name.
func IsNamed(t types.Type, pkgPath, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}
