// Package analysistest runs one analyzer over fixture packages and
// checks its diagnostics against // want expectations, mirroring the
// x/tools package of the same name (stdlib-only, like the rest of
// internal/analysis).
//
// Fixtures live under <testdata>/src/<importpath>/ and are loaded with
// that import path, so package-gated analyzers (detrange, lockhold, …)
// can be exercised by naming the fixture directory accordingly, e.g.
// testdata/src/internal/dram. Fixture imports resolve first against
// sibling fixture packages under src/, then against the standard
// library (compiled from source, so no build step is needed).
//
// Expectations are trailing comments of the form
//
//	for k := range m { // want `range over map`
//
// where each backquoted or double-quoted string is a regular expression
// that must match the message of exactly one diagnostic reported on
// that line. Diagnostics without a matching expectation, and
// expectations without a matching diagnostic, fail the test.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"dramstacks/internal/analysis"
)

// TestData returns the absolute path of the calling test's testdata
// directory.
func TestData() string {
	wd, err := os.Getwd()
	if err != nil {
		panic(err)
	}
	return filepath.Join(wd, "testdata")
}

// Run loads the fixture package at <testdata>/src/<path>, applies the
// analyzer (including //dramvet:allow suppression), and checks the
// diagnostics against the fixture's // want expectations.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, path string) {
	t.Helper()
	if err := analysis.Validate([]*analysis.Analyzer{a}); err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	imp := &fixtureImporter{
		fset: fset,
		src:  filepath.Join(testdata, "src"),
		pkgs: make(map[string]*types.Package),
	}
	imp.std = importer.ForCompiler(fset, "source", nil)

	files, pkg, info, err := imp.load(path)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", path, err)
	}

	diags, err := analysis.Analyze(a, fset, files, pkg, info)
	if err != nil {
		t.Fatal(err)
	}
	diags = append(diags, analysis.MalformedDirectives(fset, files)...)
	check(t, fset, files, diags)
}

// check matches diagnostics against // want expectations line by line.
func check(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*expectation)
	var all []*expectation
	for _, f := range files {
		fname := fset.Position(f.Pos()).Filename
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				posn := fset.Position(c.Pos())
				for _, ex := range parseWants(t, posn, c.Text) {
					k := key{fname, posn.Line}
					wants[k] = append(wants[k], ex)
					all = append(all, ex)
				}
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	for _, d := range diags {
		posn := fset.Position(d.Pos)
		matched := false
		for _, ex := range wants[key{posn.Filename, posn.Line}] {
			if !ex.matched && ex.re.MatchString(d.Message) {
				ex.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", posn, d.Message)
		}
	}
	for _, ex := range all {
		if !ex.matched {
			t.Errorf("%s: no diagnostic matching %q", ex.posn, ex.re)
		}
	}
}

type expectation struct {
	re      *regexp.Regexp
	posn    token.Position
	matched bool
}

// wantRE extracts the payload of a // want comment; each quoted or
// backquoted string in the payload is one expectation.
var (
	wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)
	exprRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")
)

func parseWants(t *testing.T, posn token.Position, comment string) []*expectation {
	t.Helper()
	m := wantRE.FindStringSubmatch(comment)
	if m == nil {
		return nil
	}
	var out []*expectation
	for _, q := range exprRE.FindAllString(m[1], -1) {
		s, err := strconv.Unquote(q)
		if err != nil {
			t.Fatalf("%s: malformed want pattern %s: %v", posn, q, err)
		}
		re, err := regexp.Compile(s)
		if err != nil {
			t.Fatalf("%s: malformed want regexp %s: %v", posn, q, err)
		}
		out = append(out, &expectation{re: re, posn: posn})
	}
	if len(out) == 0 {
		t.Fatalf("%s: // want comment with no quoted pattern", posn)
	}
	return out
}

// fixtureImporter resolves imports first against fixture packages under
// src/, then against the standard library.
type fixtureImporter struct {
	fset *token.FileSet
	src  string
	std  types.Importer
	pkgs map[string]*types.Package
}

func (im *fixtureImporter) Import(path string) (*types.Package, error) {
	if p, ok := im.pkgs[path]; ok {
		return p, nil
	}
	dir := filepath.Join(im.src, filepath.FromSlash(path))
	if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
		_, pkg, _, err := im.load(path)
		return pkg, err
	}
	return im.std.Import(path)
}

// load parses and type-checks the fixture package at src/<path>.
func (im *fixtureImporter) load(path string) ([]*ast.File, *types.Package, *types.Info, error) {
	dir := filepath.Join(im.src, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(im.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil, nil, fmt.Errorf("no .go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: im}
	pkg, err := conf.Check(path, im.fset, files, info)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	im.pkgs[path] = pkg
	return files, pkg, info, nil
}
