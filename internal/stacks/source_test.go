package stacks

import (
	"math/rand"
	"testing"

	"dramstacks/internal/dram"
)

// randomView draws a CycleView exercising every branch of Account,
// including regulation cycles and per-source data attribution.
func randomView(rng *rand.Rand, banks, sources int) CycleView {
	var v CycleView
	v.DataSource = SourceShared
	v.RegSource = SourceShared
	switch rng.Intn(6) {
	case 0:
		v.Data = dram.DataRead
		v.DataSource = rng.Intn(sources+2) - 1 // SourceShared..sources (out of range allowed)
	case 1:
		v.Data = dram.DataWrite
		v.DataSource = rng.Intn(sources+2) - 1
	case 2:
		v.Refreshing = true
	case 3:
		mask := func() uint64 { return rng.Uint64() & (1<<banks - 1) }
		v.PreMask, v.ActMask, v.BlockedMask = mask(), mask(), mask()
		if v.PreMask|v.ActMask|v.BlockedMask == 0 {
			v.PreMask = 1
		}
		v.Pending = true
	case 4:
		v.Pending = true
		v.ChannelBlocked = true
	case 5:
		v.Regulated = true
		v.RegSource = rng.Intn(sources+2) - 1
	}
	return v
}

// TestSourceConservation is the per-source attribution conservation
// invariant: summed over all rows (sources + shared), the per-source
// Full and Shared accumulators equal the aggregate stack exactly —
// integer equality, no tolerance — over randomized cycle streams.
func TestSourceConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(0x50a7ce))
	for trial := 0; trial < 50; trial++ {
		banks := 1 + rng.Intn(32)
		sources := 1 + rng.Intn(8)
		agg := NewBandwidthAccountant(banks)
		split := NewBandwidthAccountant(banks)
		split.EnableSourceTracking(sources)

		cycles := 500 + rng.Intn(2000)
		for i := 0; i < cycles; i++ {
			// Occasionally exercise the closed-form paths.
			switch rng.Intn(20) {
			case 0:
				n := int64(1 + rng.Intn(100))
				agg.AccountIdle(n)
				split.AccountIdle(n)
			case 1:
				n := int64(1 + rng.Intn(100))
				agg.AccountRefreshing(n)
				split.AccountRefreshing(n)
			default:
				v := randomView(rng, banks, sources)
				agg.Account(v)
				split.Account(v)
			}
		}

		rows := split.SourceStacks()
		if len(rows) != sources+1 {
			t.Fatalf("trial %d: %d rows, want %d", trial, len(rows), sources+1)
		}
		if rows[sources].Source != SourceShared {
			t.Fatalf("trial %d: last row source = %d, want SourceShared", trial, rows[sources].Source)
		}

		// Per-source rows must sum exactly to the split accountant's own
		// aggregate, which in turn must match the independent aggregate.
		var sumFull, sumShared [NumBWComponents]int64
		for _, row := range rows {
			for c := range row.Full {
				sumFull[c] += row.Full[c]
				sumShared[c] += row.Shared[c]
			}
		}
		if sumFull != agg.full {
			t.Fatalf("trial %d: per-source Full sum %v != aggregate %v", trial, sumFull, agg.full)
		}
		if sumShared != agg.shared {
			t.Fatalf("trial %d: per-source Shared sum %v != aggregate %v", trial, sumShared, agg.shared)
		}
		if split.full != agg.full || split.shared != agg.shared || split.total != agg.total {
			t.Fatalf("trial %d: source tracking changed the aggregate accounting", trial)
		}

		// Fractional view: row cycles sum to the aggregate stack within
		// float tolerance (the exact invariant is the integer one above).
		stack := agg.Stack()
		var rowSum [NumBWComponents]float64
		for _, row := range rows {
			cy := row.Cycles(banks)
			for c := range cy {
				rowSum[c] += cy[c]
			}
		}
		for c := range rowSum {
			if d := rowSum[c] - stack.Cycles[c]; d > 1e-6 || d < -1e-6 {
				t.Fatalf("trial %d: component %v rows sum %.9f, aggregate %.9f",
					trial, BWComponent(c), rowSum[c], stack.Cycles[c])
			}
		}
		if err := stack.CheckSum(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

// TestSourceTrackingAttribution pins the attribution rules: data cycles
// to DataSource, regulation cycles to RegSource, everything else to the
// shared row; out-of-range sources to the shared row.
func TestSourceTrackingAttribution(t *testing.T) {
	a := NewBandwidthAccountant(4)
	a.EnableSourceTracking(2)
	a.Account(CycleView{Data: dram.DataRead, DataSource: 0})
	a.Account(CycleView{Data: dram.DataWrite, DataSource: 1})
	a.Account(CycleView{Data: dram.DataRead, DataSource: SourceShared})
	a.Account(CycleView{Data: dram.DataRead, DataSource: 7}) // out of range -> shared
	a.Account(CycleView{Regulated: true, RegSource: 1})
	a.Account(CycleView{Refreshing: true})
	a.Account(CycleView{}) // idle

	rows := a.SourceStacks()
	if rows[0].Full[BWRead] != 1 || rows[0].Full[BWWrite] != 0 {
		t.Errorf("source 0 row: %+v", rows[0])
	}
	if rows[1].Full[BWWrite] != 1 || rows[1].Full[BWRegulation] != 1 {
		t.Errorf("source 1 row: %+v", rows[1])
	}
	sh := rows[2]
	if sh.Full[BWRead] != 2 || sh.Full[BWRefresh] != 1 || sh.Full[BWIdle] != 1 {
		t.Errorf("shared row: %+v", sh)
	}
	if a.Stack().Cycles[BWRegulation] != 1 {
		t.Errorf("aggregate regulation = %v, want 1", a.Stack().Cycles[BWRegulation])
	}
}

// TestSourceStackSubAdd checks the warmup-subtraction and cross-channel
// aggregation helpers.
func TestSourceStackSubAdd(t *testing.T) {
	a := SourceStack{Source: 0}
	a.Full[BWRead] = 10
	a.Shared[BWBankIdle] = 8
	b := SourceStack{Source: 0}
	b.Full[BWRead] = 4
	b.Shared[BWBankIdle] = 3
	d := a.Sub(b)
	if d.Full[BWRead] != 6 || d.Shared[BWBankIdle] != 5 || d.Source != 0 {
		t.Errorf("Sub: %+v", d)
	}
	d.Add(b)
	if d.Full[BWRead] != 10 || d.Shared[BWBankIdle] != 8 {
		t.Errorf("Add: %+v", d)
	}
}

// TestRegulatedCycleHierarchy checks that regulation ranks below bank
// activity and channel constraints but above idle, per the accounting
// hierarchy.
func TestRegulatedCycleHierarchy(t *testing.T) {
	a := NewBandwidthAccountant(4)
	// Busy bank wins over Regulated.
	a.Account(CycleView{PreMask: 1, Regulated: true})
	if a.Stack().Cycles[BWRegulation] != 0 {
		t.Error("bank activity must outrank regulation")
	}
	// Pending+ChannelBlocked wins over Regulated.
	a.Account(CycleView{Pending: true, ChannelBlocked: true, Regulated: true})
	if a.Stack().Cycles[BWRegulation] != 0 {
		t.Error("channel constraints must outrank regulation")
	}
	// Regulated wins over idle.
	a.Account(CycleView{Regulated: true})
	if a.Stack().Cycles[BWRegulation] != 1 {
		t.Error("regulated cycle not accounted")
	}
}
