package stacks

import (
	"strings"
	"testing"

	"dramstacks/internal/dram"
)

// mkBW builds a bandwidth stack with the given component fractions of
// the total (remainder goes to read).
func mkBW(t *testing.T, fracs map[BWComponent]float64) BandwidthStack {
	t.Helper()
	total := int64(100000)
	s := BandwidthStack{Banks: 16, TotalCycles: total}
	used := 0.0
	for c, f := range fracs {
		s.Cycles[c] = f * float64(total)
		used += f
	}
	s.Cycles[BWRead] += (1 - used) * float64(total)
	if err := s.CheckSum(); err != nil {
		t.Fatal(err)
	}
	return s
}

// mkLat builds a latency stack with the given per-read components.
func mkLat(comps map[LatComponent]float64) LatencyStack {
	var s LatencyStack
	s.Reads = 1
	for c, v := range comps {
		s.SumCycles[c] = v
	}
	return s
}

func geoT() dram.Geometry {
	g, _ := dram.DDR4_2400()
	return g
}

func TestDiagnoseIdle(t *testing.T) {
	bw := mkBW(t, map[BWComponent]float64{BWIdle: 0.6})
	lat := mkLat(map[LatComponent]float64{LatBaseCtrl: 30, LatBaseDRAM: 20})
	advice := Diagnose(bw, lat, geoT())
	if len(advice) != 1 || advice[0].Component != "idle" {
		t.Fatalf("advice = %v, want one idle finding", advice)
	}
	if !strings.Contains(advice[0].Action, "request rate") {
		t.Errorf("idle action = %q", advice[0].Action)
	}
}

func TestDiagnoseBankIdleSplitsByQueueing(t *testing.T) {
	bw := mkBW(t, map[BWComponent]float64{BWBankIdle: 0.5})

	lowQ := mkLat(map[LatComponent]float64{LatBaseCtrl: 30, LatBaseDRAM: 20, LatQueue: 2})
	a := Diagnose(bw, lowQ, geoT())
	if len(a) == 0 || !strings.Contains(a[0].Finding, "request rate is too low") {
		t.Errorf("low-queue advice = %v, want request-rate finding", a)
	}

	hiQ := mkLat(map[LatComponent]float64{LatBaseCtrl: 30, LatBaseDRAM: 20, LatQueue: 80})
	b := Diagnose(bw, hiQ, geoT())
	if len(b) == 0 || !strings.Contains(b[0].Action, "interleaving") {
		t.Errorf("high-queue advice = %v, want interleaving remedy (paper §V)", b)
	}
}

func TestDiagnosePreActAndConstraints(t *testing.T) {
	bw := mkBW(t, map[BWComponent]float64{
		BWPrecharge:   0.1,
		BWActivate:    0.1,
		BWConstraints: 0.2,
	})
	lat := mkLat(map[LatComponent]float64{LatBaseCtrl: 30, LatPreAct: 26})
	advice := Diagnose(bw, lat, geoT())
	if len(advice) != 2 {
		t.Fatalf("advice = %v, want 2 findings", advice)
	}
	// Sorted by share: pre/act (0.2) and constraints (0.2); accept either
	// order but both must be present.
	seen := map[string]bool{}
	for _, a := range advice {
		seen[a.Component] = true
	}
	if !seen["pre/act"] || !seen["constraints"] {
		t.Errorf("advice components = %v", advice)
	}
}

func TestDiagnoseWriteburst(t *testing.T) {
	bw := mkBW(t, nil) // all read: no bandwidth finding
	lat := mkLat(map[LatComponent]float64{
		LatBaseCtrl: 30, LatBaseDRAM: 20, LatWriteBurst: 25, LatQueue: 10,
	})
	advice := Diagnose(bw, lat, geoT())
	found := false
	for _, a := range advice {
		if a.Component == "writeburst" && strings.Contains(a.Action, "write queue") {
			found = true
		}
	}
	if !found {
		t.Errorf("advice = %v, want a writeburst finding", advice)
	}
}

func TestDiagnoseSaturatedIsQuiet(t *testing.T) {
	// 95% read + refresh: nothing actionable.
	bw := mkBW(t, map[BWComponent]float64{BWRefresh: 0.05})
	lat := mkLat(map[LatComponent]float64{LatBaseCtrl: 30, LatBaseDRAM: 20, LatQueue: 100})
	if advice := Diagnose(bw, lat, geoT()); len(advice) != 0 {
		t.Errorf("saturated stack produced advice: %v", advice)
	}
	if advice := Diagnose(BandwidthStack{}, lat, geoT()); advice != nil {
		t.Error("empty stack produced advice")
	}
}

func TestDiagnoseSortedByShare(t *testing.T) {
	bw := mkBW(t, map[BWComponent]float64{BWIdle: 0.15, BWBankIdle: 0.4, BWConstraints: 0.2})
	lat := mkLat(map[LatComponent]float64{LatBaseCtrl: 30, LatQueue: 60})
	advice := Diagnose(bw, lat, geoT())
	for i := 1; i < len(advice); i++ {
		if advice[i].Share > advice[i-1].Share {
			t.Errorf("advice not sorted: %v", advice)
		}
	}
	if advice[0].Component != "bank_idle" {
		t.Errorf("largest finding = %v, want bank_idle", advice[0])
	}
	if s := advice[0].String(); !strings.Contains(s, "bank_idle") || !strings.Contains(s, "%") {
		t.Errorf("String() = %q", s)
	}
}
