package stacks

// Sample is one through-time slice of the bandwidth and latency stacks,
// covering memory cycles [Start, End).
type Sample struct {
	Start, End int64
	BW         BandwidthStack
	Lat        LatencyStack
}

// Sampler cuts periodic through-time samples from a pair of accountants,
// as used for the paper's Fig. 7 through-time stack plots.
type Sampler struct {
	interval int64
	bw       *BandwidthAccountant
	lat      *LatencyAccountant

	lastCut int64
	lastBW  BandwidthStack
	lastLat LatencyStack
	samples []Sample
}

// NewSampler returns a sampler cutting a sample every interval memory
// cycles from the given accountants. A non-positive interval disables
// sampling (MaybeCut becomes a no-op).
func NewSampler(interval int64, bw *BandwidthAccountant, lat *LatencyAccountant) *Sampler {
	return &Sampler{interval: interval, bw: bw, lat: lat}
}

// MaybeCut cuts a sample if at least one interval has elapsed since the
// previous cut. Call it periodically with the current memory cycle.
func (s *Sampler) MaybeCut(now int64) {
	if s.interval <= 0 {
		return
	}
	for now-s.lastCut >= s.interval {
		s.cut(s.lastCut + s.interval)
	}
}

// Finish cuts a final partial sample ending at now, if any cycles elapsed
// since the last cut.
func (s *Sampler) Finish(now int64) {
	if s.interval <= 0 || now <= s.lastCut {
		return
	}
	s.cut(now)
}

func (s *Sampler) cut(end int64) {
	bw := s.bw.Stack()
	lat := s.lat.Stack()
	s.samples = append(s.samples, Sample{
		Start: s.lastCut,
		End:   end,
		BW:    bw.Sub(s.lastBW),
		Lat:   lat.Sub(s.lastLat),
	})
	s.lastCut = end
	s.lastBW = bw
	s.lastLat = lat
}

// Samples returns the samples cut so far.
func (s *Sampler) Samples() []Sample { return s.samples }

// NextCut returns the cycle boundary at which the next sample will be
// cut, or 0 when sampling is disabled. A fast-forwarding caller must
// account all cycles below the boundary before calling MaybeCut with it.
func (s *Sampler) NextCut() int64 {
	if s.interval <= 0 {
		return 0
	}
	return s.lastCut + s.interval
}
