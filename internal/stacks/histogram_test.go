package stacks

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	var h LatencyHistogram
	if h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Error("empty histogram not zero")
	}
	for _, v := range []int64{10, 20, 30, 40, 1000} {
		h.Add(v)
	}
	if h.Count() != 5 || h.Max() != 1000 {
		t.Fatalf("count/max = %d/%d", h.Count(), h.Max())
	}
	if got := h.Mean(); got != 220 {
		t.Errorf("mean = %v, want 220", got)
	}
	// p99 lands in the top bucket, bounded by the observed max.
	if got := h.Quantile(0.99); got != 1000 {
		t.Errorf("p99 = %d, want 1000", got)
	}
	// p50 falls in the bucket holding 20 and 30: top edge 31.
	if got := h.Quantile(0.5); got != 31 {
		t.Errorf("p50 = %d, want 31", got)
	}
}

func TestHistogramQuantileMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var h LatencyHistogram
		for i := 0; i < 200; i++ {
			h.Add(rng.Int63n(100000))
		}
		prev := int64(-1)
		for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
			v := h.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		return h.Quantile(1) <= h.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestHistogramQuantileBoundsActualValues(t *testing.T) {
	// The bucket upper bound must never be below the true quantile's
	// bucket: check against an exact computation.
	rng := rand.New(rand.NewSource(9))
	var h LatencyHistogram
	var vals []int64
	for i := 0; i < 999; i++ {
		v := rng.Int63n(5000)
		vals = append(vals, v)
		h.Add(v)
	}
	exact := func(q float64) int64 {
		s := append([]int64(nil), vals...)
		for i := range s {
			for j := i + 1; j < len(s); j++ {
				if s[j] < s[i] {
					s[i], s[j] = s[j], s[i]
				}
			}
		}
		return s[int(q*float64(len(s)))]
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		if got, want := h.Quantile(q), exact(q); got < want {
			t.Errorf("q%.2f: histogram bound %d below exact %d", q, got, want)
		}
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b LatencyHistogram
	a.Add(10)
	a.Add(100)
	b.Add(1000)
	a.Merge(b)
	if a.Count() != 3 || a.Max() != 1000 {
		t.Errorf("merged count/max = %d/%d", a.Count(), a.Max())
	}
	if got := a.Mean(); got != 370 {
		t.Errorf("merged mean = %v, want 370", got)
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	var h LatencyHistogram
	h.Add(-5)
	if h.Count() != 1 || h.Max() != 0 {
		t.Errorf("negative add mishandled: %d/%d", h.Count(), h.Max())
	}
}
