package stacks

import (
	"fmt"

	"dramstacks/internal/dram"
)

// Advice is one diagnosis derived from the stacks, following the paper's
// §IV/§V interpretation guide.
type Advice struct {
	// Component names the stack component that triggered the advice.
	Component string
	// Share is the component's share of the peak bandwidth (bandwidth
	// findings) or of the average latency (latency findings), 0..1.
	Share float64
	// Finding states what the stacks show.
	Finding string
	// Action states the paper's suggested remedy.
	Action string
}

// String formats the advice for CLI output.
func (a Advice) String() string {
	return fmt.Sprintf("[%s %4.1f%%] %s -> %s", a.Component, 100*a.Share, a.Finding, a.Action)
}

// Diagnose applies the paper's interpretation rules to a bandwidth stack
// and its companion latency stack and returns the findings, largest
// share first. An empty result means the stacks show no addressable
// bottleneck (either bandwidth is saturated by useful traffic, or
// nothing significant is lost).
//
// The rules operationalize the paper's §IV summary:
//
//   - idle: the chip waits for requests — raise the request rate (more
//     threads, more memory-level parallelism);
//   - bank-idle with low queueing latency: also a request-rate problem;
//   - bank-idle with high queueing latency: a bank-distribution problem —
//     improve interleaving (the paper's Fig. 6 remedy);
//   - precharge/activate: page misses — improve locality or reconsider
//     the page policy;
//   - constraints: command-timing bound — avoid read/write ping-pong and
//     single-bank-group streams;
//   - refresh: intrinsic, nothing to do;
//
// and §V's latency-side signals (writeburst → write queue tuning).
func Diagnose(bw BandwidthStack, lat LatencyStack, geo dram.Geometry) []Advice {
	var out []Advice
	if bw.TotalCycles == 0 {
		return nil
	}
	g := bw.GBps(geo)
	peak := geo.PeakBandwidthGBs()
	share := func(c BWComponent) float64 { return g[c] / peak }

	latNS := lat.AvgNS(geo)
	latTotal := lat.AvgTotalNS(geo)
	queueing := latNS[LatQueue] + latNS[LatWriteBurst] + latNS[LatRefresh]
	queueHeavy := latTotal > 0 && queueing > 0.35*latTotal

	const minShare = 0.10 // report components above 10% of peak

	if s := share(BWIdle); s > minShare {
		out = append(out, Advice{
			Component: "idle", Share: s,
			Finding: "the DRAM chip is idle: the cores do not supply enough requests",
			Action:  "increase the request rate (more threads, more memory-level parallelism)",
		})
	}
	if s := share(BWBankIdle); s > minShare {
		if queueHeavy {
			out = append(out, Advice{
				Component: "bank_idle", Share: s,
				Finding: "banks sit idle while requests queue: accesses pile onto few banks",
				Action:  "improve bank interleaving (e.g. cache-line-interleaved indexing, Fig. 5b)",
			})
		} else {
			out = append(out, Advice{
				Component: "bank_idle", Share: s,
				Finding: "banks sit idle without queueing: the request rate is too low to cover them",
				Action:  "increase the request rate; if that fails, spread accesses across banks",
			})
		}
	}
	if s := share(BWPrecharge) + share(BWActivate); s > minShare {
		out = append(out, Advice{
			Component: "pre/act", Share: s,
			Finding: "bandwidth is spent opening and closing pages (low page hit rate)",
			Action:  "improve spatial locality or reconsider the page policy",
		})
	}
	if s := share(BWConstraints); s > minShare {
		out = append(out, Advice{
			Component: "constraints", Share: s,
			Finding: "DRAM timing constraints throttle the command stream",
			Action:  "avoid switching between reads and writes; spread streams over bank groups",
		})
	}
	// Latency-side signal: write bursts delaying reads.
	if latTotal > 0 {
		if s := latNS[LatWriteBurst] / latTotal; s > minShare {
			out = append(out, Advice{
				Component: "writeburst", Share: s,
				Finding: "reads wait behind write-buffer drains",
				Action:  "enlarge the write queue or spread writebacks across banks",
			})
		}
	}

	// Largest share first (insertion sort: the list is tiny).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Share > out[j-1].Share; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
