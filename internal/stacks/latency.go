package stacks

import (
	"fmt"

	"dramstacks/internal/dram"
)

// LatComponent enumerates the latency stack components (paper §V).
type LatComponent uint8

const (
	// LatBaseCtrl is the fixed memory-controller pipeline latency
	// (request path, scheduling, response path). Together with
	// LatBaseDRAM it forms the paper's "base" component; Fig. 7 shows
	// them separately as base-cntlr and base-dram.
	LatBaseCtrl LatComponent = iota
	// LatBaseDRAM is the uncontended device read time: tCL + tBL/2.
	LatBaseDRAM
	// LatPreAct is the extra latency of the precharge and/or activate
	// this read itself required (its page miss penalty).
	LatPreAct
	// LatRefresh is time the read waited because the rank was refreshing.
	LatRefresh
	// LatWriteBurst is time the read waited because the controller was
	// draining the write buffer (reads are not scheduled during a burst).
	LatWriteBurst
	// LatQueue is the remaining waiting time: behind other reads, for
	// timing constraints, for the data bus.
	LatQueue
	// LatRegulated is time the read spent held by QoS bandwidth
	// regulation (its source over budget for the window). Always exactly
	// zero without a QoS policy.
	LatRegulated

	// NumLatComponents is the number of latency stack components.
	NumLatComponents
)

// String returns the component label used in the paper's figures.
func (c LatComponent) String() string {
	switch c {
	case LatBaseCtrl:
		return "base-cntlr"
	case LatBaseDRAM:
		return "base-dram"
	case LatPreAct:
		return "act/pre"
	case LatRefresh:
		return "refresh"
	case LatWriteBurst:
		return "writeburst"
	case LatQueue:
		return "queue"
	case LatRegulated:
		return "regulated"
	default:
		return fmt.Sprintf("LatComponent(%d)", uint8(c))
	}
}

// ReadLatency is the decomposition of a single read's latency, in memory
// cycles. The components must sum to the read's total latency; Total
// carries it for checking.
type ReadLatency struct {
	Total      int64
	Components [NumLatComponents]float64
}

// Check verifies that the components sum to Total and are non-negative.
func (r ReadLatency) Check() error {
	var sum float64
	for c, v := range r.Components {
		if v < -1e-9 {
			return fmt.Errorf("stacks: negative latency component %v = %f", LatComponent(c), v)
		}
		sum += v
	}
	if diff := sum - float64(r.Total); diff > 1e-6 || diff < -1e-6 {
		return fmt.Errorf("stacks: latency components sum to %.3f, want %d", sum, r.Total)
	}
	return nil
}

// LatencyAccountant accumulates a latency stack over many reads.
type LatencyAccountant struct {
	sum   [NumLatComponents]float64
	reads int64
}

// NewLatencyAccountant returns an empty latency accountant.
func NewLatencyAccountant() *LatencyAccountant { return &LatencyAccountant{} }

// AddRead records one completed read's latency decomposition.
func (a *LatencyAccountant) AddRead(r ReadLatency) {
	for c, v := range r.Components {
		a.sum[c] += v
	}
	a.reads++
}

// Stack returns the accumulated latency stack.
func (a *LatencyAccountant) Stack() LatencyStack {
	return LatencyStack{SumCycles: a.sum, Reads: a.reads}
}

// LatencyStack is a completed latency stack: per-component summed cycles
// over Reads read operations.
type LatencyStack struct {
	SumCycles [NumLatComponents]float64
	Reads     int64
}

// Sub returns the stack covering the interval between snapshot old and s.
func (s LatencyStack) Sub(old LatencyStack) LatencyStack {
	d := LatencyStack{Reads: s.Reads - old.Reads}
	for c := range s.SumCycles {
		d.SumCycles[c] = s.SumCycles[c] - old.SumCycles[c]
	}
	return d
}

// Add accumulates another latency stack into s.
func (s *LatencyStack) Add(o LatencyStack) {
	s.Reads += o.Reads
	for c := range s.SumCycles {
		s.SumCycles[c] += o.SumCycles[c]
	}
}

// AvgNS returns the average per-read latency components in nanoseconds.
// The components sum to the average read latency.
func (s LatencyStack) AvgNS(geo dram.Geometry) [NumLatComponents]float64 {
	var out [NumLatComponents]float64
	if s.Reads == 0 {
		return out
	}
	for c := range s.SumCycles {
		out[c] = geo.CyclesToNS(1) * s.SumCycles[c] / float64(s.Reads)
	}
	return out
}

// AvgTotalNS returns the average total read latency in nanoseconds.
func (s LatencyStack) AvgTotalNS(geo dram.Geometry) float64 {
	var t float64
	for _, v := range s.AvgNS(geo) {
		t += v
	}
	return t
}

// BaseNS returns the combined base (controller + DRAM) component in ns,
// the paper's "base" bar.
func (s LatencyStack) BaseNS(geo dram.Geometry) float64 {
	a := s.AvgNS(geo)
	return a[LatBaseCtrl] + a[LatBaseDRAM]
}
