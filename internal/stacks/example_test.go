package stacks_test

import (
	"fmt"

	"dramstacks/internal/dram"
	"dramstacks/internal/stacks"
)

// Example shows the hierarchical per-cycle bandwidth accounting: the
// accountant sees one CycleView per memory cycle and the resulting stack
// always sums to the observed cycles (no double counting).
func Example() {
	geo, _ := dram.DDR4_2400()
	acct := stacks.NewBandwidthAccountant(geo.TotalBanks())

	// Six cycles of a toy schedule:
	acct.Account(stacks.CycleView{Data: dram.DataRead})  // data on the bus
	acct.Account(stacks.CycleView{Data: dram.DataRead})  // data on the bus
	acct.Account(stacks.CycleView{Data: dram.DataWrite}) // write burst
	acct.Account(stacks.CycleView{Refreshing: true})     // tRFC window
	acct.Account(stacks.CycleView{                       // bank 0 activating, others idle
		ActMask: 1 << 0, Pending: true,
	})
	acct.Account(stacks.CycleView{}) // nothing to do

	s := acct.Stack()
	fmt.Printf("total %d cycles, sum ok: %v\n", s.TotalCycles, s.CheckSum() == nil)
	fmt.Printf("read %.0f, write %.0f, refresh %.0f, activate %.4f, bank_idle %.4f, idle %.0f\n",
		s.Cycles[stacks.BWRead], s.Cycles[stacks.BWWrite], s.Cycles[stacks.BWRefresh],
		s.Cycles[stacks.BWActivate], s.Cycles[stacks.BWBankIdle], s.Cycles[stacks.BWIdle])
	// Output:
	// total 6 cycles, sum ok: true
	// read 2, write 1, refresh 1, activate 0.0625, bank_idle 0.9375, idle 1
}

// ExampleBandwidthStack_GBps converts cycle counts into the paper's GB/s
// representation, where the components sum to the peak bandwidth.
func ExampleBandwidthStack_GBps() {
	geo, _ := dram.DDR4_2400()
	acct := stacks.NewBandwidthAccountant(geo.TotalBanks())
	for i := 0; i < 500; i++ {
		acct.Account(stacks.CycleView{Data: dram.DataRead})
	}
	for i := 0; i < 500; i++ {
		acct.Account(stacks.CycleView{})
	}
	g := acct.Stack().GBps(geo)
	fmt.Printf("read %.1f GB/s, idle %.1f GB/s of %.1f peak\n",
		g[stacks.BWRead], g[stacks.BWIdle], geo.PeakBandwidthGBs())
	// Output:
	// read 9.6 GB/s, idle 9.6 GB/s of 19.2 peak
}

// ExampleLatencyAccountant decomposes read latencies; components sum to
// the measured latency of each read.
func ExampleLatencyAccountant() {
	geo, _ := dram.DDR4_2400()
	acct := stacks.NewLatencyAccountant()

	var r stacks.ReadLatency
	r.Components[stacks.LatBaseCtrl] = 30 // controller pipeline
	r.Components[stacks.LatBaseDRAM] = 20 // tCL + tBL/2
	r.Components[stacks.LatPreAct] = 32   // page miss: tRP + tRCD
	r.Components[stacks.LatQueue] = 18    // waited behind other requests
	r.Total = 100
	acct.AddRead(r)

	s := acct.Stack()
	fmt.Printf("%.1f ns total, %.1f ns act/pre\n",
		s.AvgTotalNS(geo), s.AvgNS(geo)[stacks.LatPreAct])
	// Output:
	// 83.3 ns total, 26.7 ns act/pre
}
