package stacks

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dramstacks/internal/dram"
)

func geo() dram.Geometry {
	g, _ := dram.DDR4_2400()
	return g
}

// TestBandwidthAccountingExample replays the spirit of the paper's Fig. 1:
// a scripted sequence of cycles for a 4-bank channel, checking that every
// cycle lands in the intended component with the 1/n bank split.
func TestBandwidthAccountingExample(t *testing.T) {
	a := NewBandwidthAccountant(4)

	// Cycle 1: refresh blocks everything.
	a.Account(CycleView{Refreshing: true})
	// Cycle 2: bank 0 precharges, bank 1 activates, banks 2-3 idle.
	a.Account(CycleView{PreMask: 0b0001, ActMask: 0b0010, Pending: true})
	// Cycle 3: read data on the bus (highest priority, banks also busy).
	a.Account(CycleView{Data: dram.DataRead, PreMask: 0b0001, Pending: true})
	// Cycle 4: write data.
	a.Account(CycleView{Data: dram.DataWrite})
	// Cycle 5: all banks quiet, read-to-write turnaround blocks (Tr2w).
	a.Account(CycleView{Pending: true, ChannelBlocked: true})
	// Cycle 6: nothing to do.
	a.Account(CycleView{})
	// Cycle 7: bank 2's request blocked by tCCD_L, others idle.
	a.Account(CycleView{BlockedMask: 0b0100, Pending: true})

	s := a.Stack()
	if err := s.CheckSum(); err != nil {
		t.Fatal(err)
	}
	want := map[BWComponent]float64{
		BWRead:        1,
		BWWrite:       1,
		BWRefresh:     1,
		BWPrecharge:   0.25,       // cycle 2
		BWActivate:    0.25,       // cycle 2
		BWBankIdle:    0.5 + 0.75, // cycles 2 and 7
		BWConstraints: 1 + 0.25,   // cycle 5 full + cycle 7 share
		BWIdle:        1,
	}
	for c := BWComponent(0); c < NumBWComponents; c++ {
		if got, w := s.Cycles[c], want[c]; math.Abs(got-w) > 1e-12 {
			t.Errorf("%v = %v cycles, want %v", c, got, w)
		}
	}
	if s.TotalCycles != 7 {
		t.Errorf("total = %d, want 7", s.TotalCycles)
	}
}

func TestBandwidthPriorityOrder(t *testing.T) {
	// Data beats refresh beats banks beats channel constraints.
	cases := []struct {
		view CycleView
		want BWComponent
	}{
		{CycleView{Data: dram.DataRead, Refreshing: true, PreMask: 1}, BWRead},
		{CycleView{Data: dram.DataWrite, Refreshing: true}, BWWrite},
		{CycleView{Refreshing: true, PreMask: 1, ChannelBlocked: true, Pending: true}, BWRefresh},
		{CycleView{PreMask: 1, ChannelBlocked: true, Pending: true}, BWPrecharge},
		{CycleView{ChannelBlocked: true, Pending: true}, BWConstraints},
		{CycleView{Pending: true}, BWIdle}, // pending but schedulable: nothing lost yet
		{CycleView{}, BWIdle},
	}
	for i, tc := range cases {
		a := NewBandwidthAccountant(16)
		a.Account(tc.view)
		s := a.Stack()
		if s.Cycles[tc.want] <= 0 {
			t.Errorf("case %d: component %v not incremented: %+v", i, tc.want, s.Cycles)
		}
	}
}

func TestBankBusyAndBlockedOverlap(t *testing.T) {
	// A bank that is both activating and blocked counts once, as busy.
	a := NewBandwidthAccountant(2)
	a.Account(CycleView{ActMask: 0b01, BlockedMask: 0b01, Pending: true})
	s := a.Stack()
	if err := s.CheckSum(); err != nil {
		t.Fatal(err)
	}
	if got := s.Cycles[BWActivate]; got != 0.5 {
		t.Errorf("activate = %v, want 0.5", got)
	}
	if got := s.Cycles[BWConstraints]; got != 0 {
		t.Errorf("constraints = %v, want 0", got)
	}
	if got := s.Cycles[BWBankIdle]; got != 0.5 {
		t.Errorf("bank_idle = %v, want 0.5", got)
	}
}

// TestBandwidthSumProperty: whatever the per-cycle views, components sum
// to total cycles.
func TestBandwidthSumProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		banks := 1 + int(n%32)
		a := NewBandwidthAccountant(banks)
		cycles := 100 + rng.Intn(400)
		mask := uint64(1)<<banks - 1
		for i := 0; i < cycles; i++ {
			v := CycleView{
				Data:           dram.DataKind(rng.Intn(3)),
				Refreshing:     rng.Intn(10) == 0,
				PreMask:        rng.Uint64() & mask & rng.Uint64(),
				ActMask:        rng.Uint64() & mask & rng.Uint64(),
				BlockedMask:    rng.Uint64() & mask & rng.Uint64(),
				Pending:        rng.Intn(2) == 0,
				ChannelBlocked: rng.Intn(4) == 0,
			}
			a.Account(v)
		}
		return a.Stack().CheckSum() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBandwidthGBpsScaling(t *testing.T) {
	g := geo()
	a := NewBandwidthAccountant(g.TotalBanks())
	// Paper §IV example: 100k precharge-ish cycles of 1M total at
	// 16 B/cycle and 1.2 GHz is 1.92 GB/s. We use full-cycle precharge
	// shares here by marking all banks precharging.
	all := uint64(1)<<g.TotalBanks() - 1
	for i := 0; i < 100000; i++ {
		a.Account(CycleView{PreMask: all, Pending: true})
	}
	for i := 0; i < 900000; i++ {
		a.Account(CycleView{Data: dram.DataRead})
	}
	got := a.Stack().GBps(g)
	if math.Abs(got[BWPrecharge]-1.92) > 1e-9 {
		t.Errorf("precharge = %v GB/s, want 1.92", got[BWPrecharge])
	}
	if math.Abs(got[BWRead]-17.28) > 1e-9 {
		t.Errorf("read = %v GB/s, want 17.28", got[BWRead])
	}
	var sum float64
	for _, v := range got {
		sum += v
	}
	if math.Abs(sum-g.PeakBandwidthGBs()) > 1e-9 {
		t.Errorf("components sum to %v, want peak %v", sum, g.PeakBandwidthGBs())
	}
}

func TestBandwidthSubAndAdd(t *testing.T) {
	a := NewBandwidthAccountant(4)
	a.Account(CycleView{Data: dram.DataRead})
	snap := a.Stack()
	a.Account(CycleView{})
	a.Account(CycleView{Data: dram.DataWrite})
	d := a.Stack().Sub(snap)
	if d.TotalCycles != 2 || d.Cycles[BWRead] != 0 || d.Cycles[BWWrite] != 1 || d.Cycles[BWIdle] != 1 {
		t.Errorf("delta stack wrong: %+v", d)
	}
	sum := snap
	sum.Add(d)
	if sum.TotalCycles != 3 || sum.Cycles[BWRead] != 1 {
		t.Errorf("aggregated stack wrong: %+v", sum)
	}
}

func TestReadLatencyCheck(t *testing.T) {
	r := ReadLatency{Total: 10}
	r.Components[LatBaseDRAM] = 6
	r.Components[LatQueue] = 4
	if err := r.Check(); err != nil {
		t.Errorf("valid decomposition rejected: %v", err)
	}
	r.Components[LatQueue] = 5
	if err := r.Check(); err == nil {
		t.Error("mismatched sum accepted")
	}
	r.Components[LatQueue] = 4
	r.Components[LatRefresh] = -1
	r.Components[LatPreAct] = 1
	if err := r.Check(); err == nil {
		t.Error("negative component accepted")
	}
}

func TestLatencyStackAverages(t *testing.T) {
	g := geo()
	a := NewLatencyAccountant()
	for i := 0; i < 4; i++ {
		var r ReadLatency
		r.Components[LatBaseCtrl] = 10
		r.Components[LatBaseDRAM] = 20
		r.Components[LatQueue] = float64(i * 12) // 0,12,24,36 -> avg 18
		r.Total = int64(30 + i*12)
		if err := r.Check(); err != nil {
			t.Fatal(err)
		}
		a.AddRead(r)
	}
	s := a.Stack()
	if s.Reads != 4 {
		t.Fatalf("reads = %d", s.Reads)
	}
	ns := s.AvgNS(g)
	cyc := g.CyclesToNS(1)
	if math.Abs(ns[LatQueue]-18*cyc) > 1e-9 {
		t.Errorf("queue = %v ns, want %v", ns[LatQueue], 18*cyc)
	}
	if math.Abs(s.BaseNS(g)-30*cyc) > 1e-9 {
		t.Errorf("base = %v ns, want %v", s.BaseNS(g), 30*cyc)
	}
	if math.Abs(s.AvgTotalNS(g)-48*cyc) > 1e-9 {
		t.Errorf("total = %v ns, want %v", s.AvgTotalNS(g), 48*cyc)
	}
}

func TestSamplerCutsIntervals(t *testing.T) {
	bw := NewBandwidthAccountant(4)
	lat := NewLatencyAccountant()
	s := NewSampler(100, bw, lat)
	for c := int64(0); c < 250; c++ {
		bw.Account(CycleView{Data: dram.DataRead})
		s.MaybeCut(c + 1)
	}
	s.Finish(250)
	samples := s.Samples()
	if len(samples) != 3 {
		t.Fatalf("samples = %d, want 3", len(samples))
	}
	if samples[0].Start != 0 || samples[0].End != 100 ||
		samples[2].Start != 200 || samples[2].End != 250 {
		t.Errorf("sample boundaries wrong: %+v", samples)
	}
	if samples[1].BW.Cycles[BWRead] != 100 {
		t.Errorf("middle sample read cycles = %v, want 100", samples[1].BW.Cycles[BWRead])
	}
	if samples[2].BW.TotalCycles != 50 {
		t.Errorf("final partial sample = %d cycles, want 50", samples[2].BW.TotalCycles)
	}
}

func TestSamplerDisabled(t *testing.T) {
	bw := NewBandwidthAccountant(4)
	s := NewSampler(0, bw, NewLatencyAccountant())
	s.MaybeCut(1000)
	s.Finish(2000)
	if len(s.Samples()) != 0 {
		t.Error("disabled sampler produced samples")
	}
}

func TestComponentStrings(t *testing.T) {
	wantBW := []string{"read", "write", "refresh", "precharge", "activate", "constraints", "bank_idle", "idle", "regulation"}
	for c := BWComponent(0); c < NumBWComponents; c++ {
		if got := c.String(); got != wantBW[c] {
			t.Errorf("BWComponent %d = %q, want %q", c, got, wantBW[c])
		}
	}
	wantLat := []string{"base-cntlr", "base-dram", "act/pre", "refresh", "writeburst", "queue", "regulated"}
	for c := LatComponent(0); c < NumLatComponents; c++ {
		if got := c.String(); got != wantLat[c] {
			t.Errorf("LatComponent %d = %q, want %q", c, got, wantLat[c])
		}
	}
}
