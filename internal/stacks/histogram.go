package stacks

import "math/bits"

// LatencyHistogram collects per-read total latencies in logarithmic
// buckets, complementing the latency stack's averages with percentiles
// (queueing under write bursts and refreshes makes DRAM latency heavily
// tailed — an average alone hides it).
type LatencyHistogram struct {
	buckets [40]int64 // bucket i counts latencies in [2^i, 2^(i+1)) cycles
	count   int64
	sum     int64
	max     int64
}

// Add records one read's total latency in memory cycles.
func (h *LatencyHistogram) Add(cycles int64) {
	if cycles < 0 {
		cycles = 0
	}
	b := bits.Len64(uint64(cycles))
	if b >= len(h.buckets) {
		b = len(h.buckets) - 1
	}
	h.buckets[b]++
	h.count++
	h.sum += cycles
	if cycles > h.max {
		h.max = cycles
	}
}

// Count returns how many reads were recorded.
func (h *LatencyHistogram) Count() int64 { return h.count }

// Max returns the largest recorded latency.
func (h *LatencyHistogram) Max() int64 { return h.max }

// Mean returns the average recorded latency in cycles.
func (h *LatencyHistogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Quantile returns an upper bound (the bucket's top edge) for the q-th
// quantile latency in cycles, q in [0,1].
func (h *LatencyHistogram) Quantile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(q * float64(h.count))
	if target >= h.count {
		target = h.count - 1
	}
	var seen int64
	for b, n := range h.buckets {
		seen += n
		if seen > target {
			top := int64(1)<<uint(b) - 1
			if top > h.max {
				top = h.max
			}
			return top
		}
	}
	return h.max
}

// Merge accumulates another histogram (e.g. from another controller).
func (h *LatencyHistogram) Merge(o LatencyHistogram) {
	for i := range h.buckets {
		h.buckets[i] += o.buckets[i]
	}
	h.count += o.count
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
}
