// Package stacks implements the paper's contribution: DRAM bandwidth
// stacks and latency stacks.
//
// A bandwidth stack attributes every memory-channel cycle to exactly one
// cause, so the components sum to total time (equivalently, to the peak
// bandwidth once scaled). The accounting is hierarchical to avoid double
// counting (paper §IV), with the most meaningful cause taking priority:
//
//  1. read / write — data is on the bus: achieved bandwidth.
//  2. refresh — the rank is inside tRFC of a refresh.
//  3. precharge / activate / bank-idle / (per-bank) constraints — at least
//     one bank is busy opening or closing a page, or is blocked from
//     issuing by a timing constraint. The cycle is split 1/n over all n
//     banks: busy banks to their command's component, blocked banks to
//     constraints, idle banks to bank-idle (the bandwidth that bank-level
//     parallelism could have recovered).
//  4. constraints — all banks are quiet but a pending request is blocked
//     by a channel/rank-level timing constraint (bus turnaround, tCCD,
//     tFAW, ...): the whole cycle is lost to constraints.
//  5. idle — no request is pending: the DRAM chip is idle.
//
// A latency stack decomposes the average latency of DRAM read requests
// into base (uncontended controller + device time), pre/act (page-miss
// penalty of the request itself), refresh and writeburst (time blocked
// behind a refresh or a write-buffer drain) and queue (everything else).
package stacks

import (
	"fmt"
	"math/bits"

	"dramstacks/internal/dram"
)

// BWComponent enumerates the bandwidth stack components, bottom (useful
// bandwidth) to top (chip idle) in the paper's plotting order.
type BWComponent uint8

const (
	// BWRead is achieved read bandwidth (read data on the bus).
	BWRead BWComponent = iota
	// BWWrite is achieved write bandwidth (write data on the bus).
	BWWrite
	// BWRefresh is bandwidth lost to DRAM refresh (tRFC windows).
	BWRefresh
	// BWPrecharge is bandwidth lost while banks precharge (close pages).
	BWPrecharge
	// BWActivate is bandwidth lost while banks activate (open pages).
	BWActivate
	// BWConstraints is bandwidth lost to DRAM timing constraints
	// (tCCD, tRRD, tFAW, bus turnaround, write-to-read, ...).
	BWConstraints
	// BWBankIdle is bandwidth lost because some banks sat idle while
	// others were busy: unexploited bank-level parallelism.
	BWBankIdle
	// BWIdle is bandwidth lost because the whole chip had nothing to do:
	// the cores did not supply enough requests.
	BWIdle

	// NumBWComponents is the number of bandwidth stack components.
	NumBWComponents
)

// String returns the component label used in the paper's figures.
func (c BWComponent) String() string {
	switch c {
	case BWRead:
		return "read"
	case BWWrite:
		return "write"
	case BWRefresh:
		return "refresh"
	case BWPrecharge:
		return "precharge"
	case BWActivate:
		return "activate"
	case BWConstraints:
		return "constraints"
	case BWBankIdle:
		return "bank_idle"
	case BWIdle:
		return "idle"
	default:
		return fmt.Sprintf("BWComponent(%d)", uint8(c))
	}
}

// CycleView is the per-cycle summary of the DRAM channel state that the
// memory controller hands to the accountant. Masks are per-bank bitmasks
// over all banks of the channel.
type CycleView struct {
	// Data reports what the data bus carries this cycle.
	Data dram.DataKind
	// Refreshing reports whether any rank is inside tRFC.
	Refreshing bool
	// PreMask marks banks executing a precharge.
	PreMask uint64
	// ActMask marks banks executing an activate.
	ActMask uint64
	// BlockedMask marks banks whose oldest pending request is blocked
	// from issuing its next command by a timing constraint.
	BlockedMask uint64
	// Pending reports whether any request is waiting for commands.
	Pending bool
	// ChannelBlocked reports that a pending request is blocked by a
	// channel- or rank-level constraint while every bank is quiet.
	ChannelBlocked bool
}

// BandwidthAccountant accumulates a bandwidth stack cycle by cycle.
// The zero value is invalid; use NewBandwidthAccountant.
type BandwidthAccountant struct {
	banks int

	full   [NumBWComponents]int64 // whole cycles
	shared [NumBWComponents]int64 // 1/banks-cycle shares (paper footnote 1)
	total  int64
}

// NewBandwidthAccountant returns an accountant for a channel with the
// given number of banks (the n of the 1/n bank split).
func NewBandwidthAccountant(banks int) *BandwidthAccountant {
	if banks <= 0 || banks > 64 {
		panic(fmt.Sprintf("stacks: bank count %d out of range (1..64)", banks))
	}
	return &BandwidthAccountant{banks: banks}
}

// Account classifies one channel cycle. Call exactly once per cycle.
func (a *BandwidthAccountant) Account(v CycleView) {
	a.total++
	switch {
	case v.Data == dram.DataRead:
		a.full[BWRead]++
	case v.Data == dram.DataWrite:
		a.full[BWWrite]++
	case v.Refreshing:
		a.full[BWRefresh]++
	case v.PreMask|v.ActMask|v.BlockedMask != 0:
		pre := bits.OnesCount64(v.PreMask)
		// A bank both precharging and activating cannot happen; a bank
		// busy and blocked counts as busy.
		act := bits.OnesCount64(v.ActMask &^ v.PreMask)
		blk := bits.OnesCount64(v.BlockedMask &^ (v.PreMask | v.ActMask))
		a.shared[BWPrecharge] += int64(pre)
		a.shared[BWActivate] += int64(act)
		a.shared[BWConstraints] += int64(blk)
		a.shared[BWBankIdle] += int64(a.banks - pre - act - blk)
	case v.Pending && v.ChannelBlocked:
		a.full[BWConstraints]++
	default:
		a.full[BWIdle]++
	}
}

// AccountIdle classifies n consecutive channel cycles as idle in closed
// form. It is exactly equivalent to n Account calls with a zero
// CycleView (no data, no refresh, no busy or blocked banks, nothing
// pending) — the basis of idle-cycle fast-forwarding.
func (a *BandwidthAccountant) AccountIdle(n int64) {
	a.total += n
	a.full[BWIdle] += n
}

// AccountRefreshing classifies n consecutive channel cycles as refresh
// in closed form. It is exactly equivalent to n Account calls with a
// CycleView carrying no data and Refreshing set — the basis of
// refresh-wait fast-forwarding.
func (a *BandwidthAccountant) AccountRefreshing(n int64) {
	a.total += n
	a.full[BWRefresh] += n
}

// Stack returns the accumulated bandwidth stack.
func (a *BandwidthAccountant) Stack() BandwidthStack {
	s := BandwidthStack{Banks: a.banks, TotalCycles: a.total}
	for c := BWComponent(0); c < NumBWComponents; c++ {
		s.Cycles[c] = float64(a.full[c]) + float64(a.shared[c])/float64(a.banks)
	}
	return s
}

// BandwidthStack is a completed bandwidth stack over some interval.
// Cycles holds per-component (possibly fractional) channel cycles;
// they sum to TotalCycles.
type BandwidthStack struct {
	Banks       int
	TotalCycles int64
	Cycles      [NumBWComponents]float64
}

// Sub returns the stack covering the interval between an earlier snapshot
// old and s (for through-time sampling).
func (s BandwidthStack) Sub(old BandwidthStack) BandwidthStack {
	d := BandwidthStack{Banks: s.Banks, TotalCycles: s.TotalCycles - old.TotalCycles}
	for c := range s.Cycles {
		d.Cycles[c] = s.Cycles[c] - old.Cycles[c]
	}
	return d
}

// Add accumulates another stack (e.g. from another memory controller)
// into s. Both must cover the same wall-clock interval for the result to
// be meaningful as an aggregate.
func (s *BandwidthStack) Add(o BandwidthStack) {
	s.TotalCycles += o.TotalCycles
	for c := range s.Cycles {
		s.Cycles[c] += o.Cycles[c]
	}
}

// GBps converts the stack to bandwidth components in GB/s given the
// channel geometry: component cycles / total cycles × peak bandwidth.
// The components sum to the peak bandwidth.
func (s BandwidthStack) GBps(geo dram.Geometry) [NumBWComponents]float64 {
	var out [NumBWComponents]float64
	if s.TotalCycles == 0 {
		return out
	}
	peak := geo.PeakBandwidthGBs()
	for c := range s.Cycles {
		out[c] = s.Cycles[c] / float64(s.TotalCycles) * peak
	}
	return out
}

// AchievedGBps returns the achieved (read+write) bandwidth in GB/s.
func (s BandwidthStack) AchievedGBps(geo dram.Geometry) float64 {
	g := s.GBps(geo)
	return g[BWRead] + g[BWWrite]
}

// Fraction returns the share of total cycles in component c (0..1).
func (s BandwidthStack) Fraction(c BWComponent) float64 {
	if s.TotalCycles == 0 {
		return 0
	}
	return s.Cycles[c] / float64(s.TotalCycles)
}

// CheckSum verifies the no-double-counting invariant: the components must
// sum to the total number of cycles (within floating-point tolerance).
func (s BandwidthStack) CheckSum() error {
	var sum float64
	for _, v := range s.Cycles {
		if v < -1e-9 {
			return fmt.Errorf("stacks: negative component in %+v", s.Cycles)
		}
		sum += v
	}
	if diff := sum - float64(s.TotalCycles); diff > 1e-6*float64(s.TotalCycles)+1e-6 || diff < -(1e-6*float64(s.TotalCycles)+1e-6) {
		return fmt.Errorf("stacks: components sum to %.6f, want %d", sum, s.TotalCycles)
	}
	return nil
}
