// Package stacks implements the paper's contribution: DRAM bandwidth
// stacks and latency stacks.
//
// A bandwidth stack attributes every memory-channel cycle to exactly one
// cause, so the components sum to total time (equivalently, to the peak
// bandwidth once scaled). The accounting is hierarchical to avoid double
// counting (paper §IV), with the most meaningful cause taking priority:
//
//  1. read / write — data is on the bus: achieved bandwidth.
//  2. refresh — the rank is inside tRFC of a refresh.
//  3. precharge / activate / bank-idle / (per-bank) constraints — at least
//     one bank is busy opening or closing a page, or is blocked from
//     issuing by a timing constraint. The cycle is split 1/n over all n
//     banks: busy banks to their command's component, blocked banks to
//     constraints, idle banks to bank-idle (the bandwidth that bank-level
//     parallelism could have recovered).
//  4. constraints — all banks are quiet but a pending request is blocked
//     by a channel/rank-level timing constraint (bus turnaround, tCCD,
//     tFAW, ...): the whole cycle is lost to constraints.
//  5. idle — no request is pending: the DRAM chip is idle.
//
// A latency stack decomposes the average latency of DRAM read requests
// into base (uncontended controller + device time), pre/act (page-miss
// penalty of the request itself), refresh and writeburst (time blocked
// behind a refresh or a write-buffer drain) and queue (everything else).
package stacks

import (
	"fmt"
	"math/bits"

	"dramstacks/internal/dram"
)

// BWComponent enumerates the bandwidth stack components, bottom (useful
// bandwidth) to top (chip idle) in the paper's plotting order.
type BWComponent uint8

const (
	// BWRead is achieved read bandwidth (read data on the bus).
	BWRead BWComponent = iota
	// BWWrite is achieved write bandwidth (write data on the bus).
	BWWrite
	// BWRefresh is bandwidth lost to DRAM refresh (tRFC windows).
	BWRefresh
	// BWPrecharge is bandwidth lost while banks precharge (close pages).
	BWPrecharge
	// BWActivate is bandwidth lost while banks activate (open pages).
	BWActivate
	// BWConstraints is bandwidth lost to DRAM timing constraints
	// (tCCD, tRRD, tFAW, bus turnaround, write-to-read, ...).
	BWConstraints
	// BWBankIdle is bandwidth lost because some banks sat idle while
	// others were busy: unexploited bank-level parallelism.
	BWBankIdle
	// BWIdle is bandwidth lost because the whole chip had nothing to do:
	// the cores did not supply enough requests.
	BWIdle
	// BWRegulation is bandwidth lost to QoS bandwidth regulation: requests
	// were pending but every one of them was held by its source's budget,
	// so the controller deliberately left the channel unused. Without a QoS
	// policy this component is always exactly zero.
	BWRegulation

	// NumBWComponents is the number of bandwidth stack components.
	NumBWComponents
)

// String returns the component label used in the paper's figures.
func (c BWComponent) String() string {
	switch c {
	case BWRead:
		return "read"
	case BWWrite:
		return "write"
	case BWRefresh:
		return "refresh"
	case BWPrecharge:
		return "precharge"
	case BWActivate:
		return "activate"
	case BWConstraints:
		return "constraints"
	case BWBankIdle:
		return "bank_idle"
	case BWIdle:
		return "idle"
	case BWRegulation:
		return "regulation"
	default:
		return fmt.Sprintf("BWComponent(%d)", uint8(c))
	}
}

// CycleView is the per-cycle summary of the DRAM channel state that the
// memory controller hands to the accountant. Masks are per-bank bitmasks
// over all banks of the channel.
type CycleView struct {
	// Data reports what the data bus carries this cycle.
	Data dram.DataKind
	// Refreshing reports whether any rank is inside tRFC.
	Refreshing bool
	// PreMask marks banks executing a precharge.
	PreMask uint64
	// ActMask marks banks executing an activate.
	ActMask uint64
	// BlockedMask marks banks whose oldest pending request is blocked
	// from issuing its next command by a timing constraint.
	BlockedMask uint64
	// Pending reports whether any request is waiting for commands.
	// Requests held by QoS regulation do not count as pending: a cycle
	// where every waiting request is held is a regulation cycle, not a
	// constraints cycle.
	Pending bool
	// ChannelBlocked reports that a pending request is blocked by a
	// channel- or rank-level constraint while every bank is quiet.
	ChannelBlocked bool
	// Regulated reports that at least one request is waiting but every
	// waiting request is held by QoS bandwidth regulation, with the banks
	// and the bus otherwise quiet. Always false without a QoS policy.
	Regulated bool
	// DataSource is the source of the request whose data is on the bus
	// this cycle (SourceShared if unattributed). Only consulted when
	// per-source tracking is enabled.
	DataSource int
	// RegSource is the source of the oldest held request on a Regulated
	// cycle (SourceShared if unattributed). Only consulted when
	// per-source tracking is enabled.
	RegSource int
}

// SourceShared identifies the per-source row that collects cycles not
// attributable to any single source (refresh, bank-level activity,
// constraints, idle, and data moved for unattributed requests).
const SourceShared = -1

// BandwidthAccountant accumulates a bandwidth stack cycle by cycle.
// The zero value is invalid; use NewBandwidthAccountant.
type BandwidthAccountant struct {
	banks int

	full   [NumBWComponents]int64 // whole cycles
	shared [NumBWComponents]int64 // 1/banks-cycle shares (paper footnote 1)
	total  int64

	// src, when non-nil, splits the stack per request source: rows
	// 0..n-1 are sources, row n is the SourceShared bucket. Every
	// increment to full/shared above lands in exactly one row, so the
	// rows sum to the aggregate cycle-exactly (integer equality).
	src []SourceStack
}

// EnableSourceTracking makes the accountant additionally attribute
// cycles to n request sources (plus the SourceShared bucket). Data
// cycles go to the request's source, regulation cycles to the held
// request's source; every other component is structurally shared and
// lands in the SourceShared row. Must be called before any accounting.
func (a *BandwidthAccountant) EnableSourceTracking(n int) {
	if n <= 0 {
		panic("stacks: source tracking needs at least one source")
	}
	if a.total != 0 {
		panic("stacks: EnableSourceTracking after accounting started")
	}
	a.src = make([]SourceStack, n+1)
	for i := range a.src {
		a.src[i].Source = i
	}
	a.src[n].Source = SourceShared
}

// srcFull credits one whole cycle of component c to source src's row
// (the SourceShared row when src is out of range). No-op unless
// per-source tracking is enabled.
func (a *BandwidthAccountant) srcFull(src int, c BWComponent) {
	if a.src == nil {
		return
	}
	a.src[a.srcRow(src)].Full[c]++
}

func (a *BandwidthAccountant) srcRow(src int) int {
	if src < 0 || src >= len(a.src)-1 {
		return len(a.src) - 1
	}
	return src
}

// NewBandwidthAccountant returns an accountant for a channel with the
// given number of banks (the n of the 1/n bank split).
func NewBandwidthAccountant(banks int) *BandwidthAccountant {
	if banks <= 0 || banks > 64 {
		panic(fmt.Sprintf("stacks: bank count %d out of range (1..64)", banks))
	}
	return &BandwidthAccountant{banks: banks}
}

// Account classifies one channel cycle. Call exactly once per cycle.
func (a *BandwidthAccountant) Account(v CycleView) {
	a.total++
	switch {
	case v.Data == dram.DataRead:
		a.full[BWRead]++
		a.srcFull(v.DataSource, BWRead)
	case v.Data == dram.DataWrite:
		a.full[BWWrite]++
		a.srcFull(v.DataSource, BWWrite)
	case v.Refreshing:
		a.full[BWRefresh]++
		a.srcFull(SourceShared, BWRefresh)
	case v.PreMask|v.ActMask|v.BlockedMask != 0:
		pre := bits.OnesCount64(v.PreMask)
		// A bank both precharging and activating cannot happen; a bank
		// busy and blocked counts as busy.
		act := bits.OnesCount64(v.ActMask &^ v.PreMask)
		blk := bits.OnesCount64(v.BlockedMask &^ (v.PreMask | v.ActMask))
		a.shared[BWPrecharge] += int64(pre)
		a.shared[BWActivate] += int64(act)
		a.shared[BWConstraints] += int64(blk)
		a.shared[BWBankIdle] += int64(a.banks - pre - act - blk)
		if a.src != nil {
			row := &a.src[len(a.src)-1]
			row.Shared[BWPrecharge] += int64(pre)
			row.Shared[BWActivate] += int64(act)
			row.Shared[BWConstraints] += int64(blk)
			row.Shared[BWBankIdle] += int64(a.banks - pre - act - blk)
		}
	case v.Pending && v.ChannelBlocked:
		a.full[BWConstraints]++
		a.srcFull(SourceShared, BWConstraints)
	case v.Regulated:
		a.full[BWRegulation]++
		a.srcFull(v.RegSource, BWRegulation)
	default:
		a.full[BWIdle]++
		a.srcFull(SourceShared, BWIdle)
	}
}

// AccountIdle classifies n consecutive channel cycles as idle in closed
// form. It is exactly equivalent to n Account calls with a zero
// CycleView (no data, no refresh, no busy or blocked banks, nothing
// pending) — the basis of idle-cycle fast-forwarding.
func (a *BandwidthAccountant) AccountIdle(n int64) {
	a.total += n
	a.full[BWIdle] += n
	if a.src != nil {
		a.src[len(a.src)-1].Full[BWIdle] += n
	}
}

// AccountRefreshing classifies n consecutive channel cycles as refresh
// in closed form. It is exactly equivalent to n Account calls with a
// CycleView carrying no data and Refreshing set — the basis of
// refresh-wait fast-forwarding.
func (a *BandwidthAccountant) AccountRefreshing(n int64) {
	a.total += n
	a.full[BWRefresh] += n
	if a.src != nil {
		a.src[len(a.src)-1].Full[BWRefresh] += n
	}
}

// Stack returns the accumulated bandwidth stack.
func (a *BandwidthAccountant) Stack() BandwidthStack {
	s := BandwidthStack{Banks: a.banks, TotalCycles: a.total}
	for c := BWComponent(0); c < NumBWComponents; c++ {
		s.Cycles[c] = float64(a.full[c]) + float64(a.shared[c])/float64(a.banks)
	}
	return s
}

// SourceStacks returns a copy of the per-source split (rows 0..n-1 for
// the n sources, last row SourceShared), or nil when source tracking is
// disabled. Summed element-wise over rows, Full and Shared equal the
// aggregate accountant's accumulators exactly (integer identity — see
// the conservation test).
func (a *BandwidthAccountant) SourceStacks() []SourceStack {
	if a.src == nil {
		return nil
	}
	out := make([]SourceStack, len(a.src))
	copy(out, a.src)
	return out
}

// SourceStack is one row of a per-source bandwidth split: the whole
// cycles and the 1/banks-cycle shares credited to one source (or to the
// SourceShared bucket) over the accounted interval. It mirrors the
// aggregate accountant's internal representation so conservation can be
// checked in exact integer arithmetic.
type SourceStack struct {
	// Source is the source index, or SourceShared for the shared row.
	Source int
	// Full counts whole cycles per component (data and regulation cycles
	// for source rows; refresh/constraints/idle for the shared row).
	Full [NumBWComponents]int64
	// Shared counts 1/banks-cycle shares per component (bank-level
	// activity; only ever non-zero on the SourceShared row).
	Shared [NumBWComponents]int64
}

// Cycles converts the row to per-component (possibly fractional)
// channel cycles given the channel's bank count.
func (s SourceStack) Cycles(banks int) [NumBWComponents]float64 {
	var out [NumBWComponents]float64
	for c := range s.Full {
		out[c] = float64(s.Full[c]) + float64(s.Shared[c])/float64(banks)
	}
	return out
}

// Sub returns the row covering the interval between an earlier snapshot
// old and s (warmup subtraction).
func (s SourceStack) Sub(old SourceStack) SourceStack {
	d := SourceStack{Source: s.Source}
	for c := range s.Full {
		d.Full[c] = s.Full[c] - old.Full[c]
		d.Shared[c] = s.Shared[c] - old.Shared[c]
	}
	return d
}

// Add accumulates another row (e.g. the same source on another channel)
// into s.
func (s *SourceStack) Add(o SourceStack) {
	for c := range s.Full {
		s.Full[c] += o.Full[c]
		s.Shared[c] += o.Shared[c]
	}
}

// BandwidthStack is a completed bandwidth stack over some interval.
// Cycles holds per-component (possibly fractional) channel cycles;
// they sum to TotalCycles.
type BandwidthStack struct {
	Banks       int
	TotalCycles int64
	Cycles      [NumBWComponents]float64
}

// Sub returns the stack covering the interval between an earlier snapshot
// old and s (for through-time sampling).
func (s BandwidthStack) Sub(old BandwidthStack) BandwidthStack {
	d := BandwidthStack{Banks: s.Banks, TotalCycles: s.TotalCycles - old.TotalCycles}
	for c := range s.Cycles {
		d.Cycles[c] = s.Cycles[c] - old.Cycles[c]
	}
	return d
}

// Add accumulates another stack (e.g. from another memory controller)
// into s. Both must cover the same wall-clock interval for the result to
// be meaningful as an aggregate.
func (s *BandwidthStack) Add(o BandwidthStack) {
	s.TotalCycles += o.TotalCycles
	for c := range s.Cycles {
		s.Cycles[c] += o.Cycles[c]
	}
}

// GBps converts the stack to bandwidth components in GB/s given the
// channel geometry: component cycles / total cycles × peak bandwidth.
// The components sum to the peak bandwidth.
func (s BandwidthStack) GBps(geo dram.Geometry) [NumBWComponents]float64 {
	var out [NumBWComponents]float64
	if s.TotalCycles == 0 {
		return out
	}
	peak := geo.PeakBandwidthGBs()
	for c := range s.Cycles {
		out[c] = s.Cycles[c] / float64(s.TotalCycles) * peak
	}
	return out
}

// AchievedGBps returns the achieved (read+write) bandwidth in GB/s.
func (s BandwidthStack) AchievedGBps(geo dram.Geometry) float64 {
	g := s.GBps(geo)
	return g[BWRead] + g[BWWrite]
}

// Fraction returns the share of total cycles in component c (0..1).
func (s BandwidthStack) Fraction(c BWComponent) float64 {
	if s.TotalCycles == 0 {
		return 0
	}
	return s.Cycles[c] / float64(s.TotalCycles)
}

// CheckSum verifies the no-double-counting invariant: the components must
// sum to the total number of cycles (within floating-point tolerance).
func (s BandwidthStack) CheckSum() error {
	var sum float64
	for _, v := range s.Cycles {
		if v < -1e-9 {
			return fmt.Errorf("stacks: negative component in %+v", s.Cycles)
		}
		sum += v
	}
	if diff := sum - float64(s.TotalCycles); diff > 1e-6*float64(s.TotalCycles)+1e-6 || diff < -(1e-6*float64(s.TotalCycles)+1e-6) {
		return fmt.Errorf("stacks: components sum to %.6f, want %d", sum, s.TotalCycles)
	}
	return nil
}
