// Package power estimates DRAM energy from command counts, in the style
// of the Micron DDR4 power calculator: per-command energies derived from
// the IDD currents plus a background term. The paper notes that
// DRAMSim3's visualization plots power next to bandwidth and latency;
// this package provides the same per-run energy breakdown as an
// extension to the stacks.
//
// The absolute numbers are typical-device approximations (x8 DDR4-2400,
// 8 Gb); the interesting output is the breakdown — e.g. how much of a
// random workload's energy goes to row activations versus data transfer.
package power

import (
	"fmt"

	"dramstacks/internal/dram"
)

// Model holds per-command energies (nanojoules) and background power
// (milliwatts per rank).
type Model struct {
	// ActPreNJ is the energy of one row activation plus its precharge
	// (charging the bitlines and restoring the row).
	ActPreNJ float64
	// ReadNJ is the energy of one column read burst, including I/O.
	ReadNJ float64
	// WriteNJ is the energy of one column write burst, including ODT.
	WriteNJ float64
	// RefreshNJ is the energy of one all-bank refresh command.
	RefreshNJ float64
	// BackgroundMW is the standby power of one rank (clocking,
	// peripheral logic, DLL), drawn every cycle.
	BackgroundMW float64
}

// DDR4 returns typical energies for an 8 Gb x8 DDR4-2400 device
// (derived from datasheet IDD values: IDD0 row cycles, IDD4R/IDD4W
// bursts, IDD5B refresh, IDD3N standby).
func DDR4() Model {
	return Model{
		ActPreNJ:     2.1,
		ReadNJ:       1.6,
		WriteNJ:      1.7,
		RefreshNJ:    80,
		BackgroundMW: 60,
	}
}

// Validate reports a descriptive error for non-physical parameters.
func (m Model) Validate() error {
	if m.ActPreNJ < 0 || m.ReadNJ < 0 || m.WriteNJ < 0 || m.RefreshNJ < 0 || m.BackgroundMW < 0 {
		return fmt.Errorf("power: negative parameter in %+v", m)
	}
	return nil
}

// Report is an energy breakdown for one run.
type Report struct {
	ActPreNJ     float64
	ReadNJ       float64
	WriteNJ      float64
	RefreshNJ    float64
	BackgroundNJ float64

	TotalNJ   float64
	AvgPowerW float64 // average power over the run
	// EnergyPerBitPJ is total energy divided by transferred bits
	// (0 when nothing was transferred).
	EnergyPerBitPJ float64
}

// Estimate computes the breakdown for the given command counts over a
// run of cycles memory cycles on the given geometry.
func (m Model) Estimate(stats dram.Stats, cycles int64, geo dram.Geometry) (Report, error) {
	if err := m.Validate(); err != nil {
		return Report{}, err
	}
	if cycles < 0 {
		return Report{}, fmt.Errorf("power: negative cycle count %d", cycles)
	}
	seconds := float64(cycles) / (float64(geo.ClockMHz) * 1e6)
	r := Report{
		ActPreNJ:     float64(stats.ACT) * m.ActPreNJ,
		ReadNJ:       float64(stats.RD) * m.ReadNJ,
		WriteNJ:      float64(stats.WR) * m.WriteNJ,
		RefreshNJ:    float64(stats.REF) * m.RefreshNJ,
		BackgroundNJ: m.BackgroundMW * 1e-3 * seconds * 1e9 * float64(geo.Ranks),
	}
	r.TotalNJ = r.ActPreNJ + r.ReadNJ + r.WriteNJ + r.RefreshNJ + r.BackgroundNJ
	if seconds > 0 {
		r.AvgPowerW = r.TotalNJ * 1e-9 / seconds
	}
	bits := float64(stats.RD+stats.WR) * float64(geo.LineBytes) * 8
	if bits > 0 {
		r.EnergyPerBitPJ = r.TotalNJ * 1e3 / bits
	}
	return r, nil
}

// String formats the report for CLI output.
func (r Report) String() string {
	pct := func(v float64) float64 {
		if r.TotalNJ == 0 {
			return 0
		}
		return 100 * v / r.TotalNJ
	}
	return fmt.Sprintf(
		"energy %.2f µJ (avg %.2f W, %.1f pJ/bit): act/pre %.1f%%, read %.1f%%, write %.1f%%, refresh %.1f%%, background %.1f%%",
		r.TotalNJ/1e3, r.AvgPowerW, r.EnergyPerBitPJ,
		pct(r.ActPreNJ), pct(r.ReadNJ), pct(r.WriteNJ), pct(r.RefreshNJ), pct(r.BackgroundNJ))
}
