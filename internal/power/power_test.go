package power

import (
	"math"
	"strings"
	"testing"

	"dramstacks/internal/dram"
)

func geo() dram.Geometry {
	g, _ := dram.DDR4_2400()
	return g
}

func TestEstimateArithmetic(t *testing.T) {
	m := Model{ActPreNJ: 2, ReadNJ: 1, WriteNJ: 1.5, RefreshNJ: 100, BackgroundMW: 60}
	stats := dram.Stats{ACT: 10, RD: 100, WR: 20, REF: 2}
	// 1.2M cycles at 1.2 GHz = 1 ms.
	rep, err := m.Estimate(stats, 1_200_000, geo())
	if err != nil {
		t.Fatal(err)
	}
	if rep.ActPreNJ != 20 || rep.ReadNJ != 100 || rep.WriteNJ != 30 || rep.RefreshNJ != 200 {
		t.Errorf("command energies wrong: %+v", rep)
	}
	// Background: 60 mW × 1 ms = 60 µJ = 60000 nJ.
	if math.Abs(rep.BackgroundNJ-60000) > 1e-6 {
		t.Errorf("background = %v nJ, want 60000", rep.BackgroundNJ)
	}
	wantTotal := 20.0 + 100 + 30 + 200 + 60000
	if math.Abs(rep.TotalNJ-wantTotal) > 1e-6 {
		t.Errorf("total = %v, want %v", rep.TotalNJ, wantTotal)
	}
	// Average power: 60.35 µJ over 1 ms ≈ 60.35 mW.
	if math.Abs(rep.AvgPowerW-wantTotal*1e-9/1e-3) > 1e-9 {
		t.Errorf("avg power = %v W", rep.AvgPowerW)
	}
	// 120 bursts × 64 B × 8 = 61440 bits.
	wantPJ := wantTotal * 1e3 / 61440
	if math.Abs(rep.EnergyPerBitPJ-wantPJ) > 1e-9 {
		t.Errorf("energy/bit = %v pJ, want %v", rep.EnergyPerBitPJ, wantPJ)
	}
}

func TestEstimateZeroes(t *testing.T) {
	rep, err := DDR4().Estimate(dram.Stats{}, 0, geo())
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalNJ != 0 || rep.AvgPowerW != 0 || rep.EnergyPerBitPJ != 0 {
		t.Errorf("zero run not zero: %+v", rep)
	}
}

func TestEstimateRejectsBad(t *testing.T) {
	if _, err := (Model{ActPreNJ: -1}).Estimate(dram.Stats{}, 10, geo()); err == nil {
		t.Error("negative energy accepted")
	}
	if _, err := DDR4().Estimate(dram.Stats{}, -1, geo()); err == nil {
		t.Error("negative cycles accepted")
	}
}

func TestDualRankBackgroundDoubles(t *testing.T) {
	g2, _ := dram.DDR4_2400_DualRank()
	one, _ := DDR4().Estimate(dram.Stats{}, 1_200_000, geo())
	two, _ := DDR4().Estimate(dram.Stats{}, 1_200_000, g2)
	if math.Abs(two.BackgroundNJ-2*one.BackgroundNJ) > 1e-6 {
		t.Errorf("dual-rank background = %v, want double %v", two.BackgroundNJ, one.BackgroundNJ)
	}
}

func TestReportString(t *testing.T) {
	rep, _ := DDR4().Estimate(dram.Stats{ACT: 1000, RD: 5000, WR: 1000, REF: 10}, 500_000, geo())
	s := rep.String()
	for _, want := range []string{"µJ", "pJ/bit", "act/pre", "background"} {
		if !strings.Contains(s, want) {
			t.Errorf("report %q missing %q", s, want)
		}
	}
}

// TestRandomVsSequentialEnergyShape: a page-miss-heavy run spends a much
// larger energy share on activations than a page-hit-heavy run with the
// same data volume.
func TestRandomVsSequentialEnergyShape(t *testing.T) {
	m := DDR4()
	seq := dram.Stats{ACT: 100, RD: 10000} // 1 ACT per 100 reads
	rnd := dram.Stats{ACT: 10000, RD: 10000, PRE: 10000}
	repSeq, _ := m.Estimate(seq, 1_000_000, geo())
	repRnd, _ := m.Estimate(rnd, 1_000_000, geo())
	seqShare := repSeq.ActPreNJ / repSeq.TotalNJ
	rndShare := repRnd.ActPreNJ / repRnd.TotalNJ
	if rndShare < 4*seqShare {
		t.Errorf("activation energy share: random %v vs sequential %v, want ≫", rndShare, seqShare)
	}
	if repRnd.EnergyPerBitPJ <= repSeq.EnergyPerBitPJ {
		t.Error("random pattern should cost more energy per bit")
	}
}
