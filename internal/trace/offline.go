package trace

import (
	"fmt"

	"dramstacks/internal/dram"
	"dramstacks/internal/stacks"
)

// BuildBandwidthStack reconstructs a bandwidth stack from a command
// trace by replaying it through the device timing model: every cycle up
// to (and a little past) the last command is classified with the same
// hierarchical rules the online accountant uses. Commands must be in
// issue order and legal; a timing violation aborts with an error.
//
// totalCycles, when positive, extends the accounting to that many cycles
// (so a stack matches a simulation window that ended after the last
// command); zero lets the accounting end when the device drains.
func BuildBandwidthStack(events []Event, geo dram.Geometry, tim dram.Timing, totalCycles int64) (stacks.BandwidthStack, error) {
	dev := dram.NewDevice(geo, tim)
	acct := stacks.NewBandwidthAccountant(geo.TotalBanks())
	banks := geo.TotalBanks()

	var busyUntil int64 // latest data / refresh / bank activity seen

	account := func(t int64, next *dram.Command) {
		view := stacks.CycleView{
			Data:       dev.ConsumeBusKind(t),
			Refreshing: dev.AnyRefreshing(t),
		}
		if view.Data == dram.DataNone && !view.Refreshing {
			var preMask, actMask uint64
			for b := 0; b < banks; b++ {
				pre, act := dev.BankBusy(b, t)
				if pre {
					preMask |= 1 << b
				}
				if act {
					actMask |= 1 << b
				}
			}
			view.PreMask = preMask
			view.ActMask = actMask
			if next != nil && !dev.CanIssue(*next, t) {
				// The upcoming command was prevented this cycle: the
				// request behind it was waiting.
				view.Pending = true
				l := next.Loc
				bank := (l.Rank*geo.Groups+l.Group)*geo.Banks + l.Bank
				view.BlockedMask = 1 << bank
				switch dev.Blocking(*next, t) {
				case dram.ScopeGroup:
					base := uint((l.Rank*geo.Groups + l.Group) * geo.Banks)
					view.BlockedMask |= ((uint64(1) << geo.Banks) - 1) << base
				case dram.ScopeRank:
					per := uint(geo.BanksPerRank())
					view.BlockedMask |= ((uint64(1) << per) - 1) << (uint(l.Rank) * per)
				}
				if preMask|actMask|view.BlockedMask == 0 {
					view.ChannelBlocked = true
				}
			}
		}
		acct.Account(view)
	}

	now := int64(0)
	for i := range events {
		ev := events[i]
		if ev.Cycle < now {
			return stacks.BandwidthStack{}, fmt.Errorf("trace: command %d at cycle %d out of order (at %d)",
				i, ev.Cycle, now)
		}
		for t := now; t < ev.Cycle; t++ {
			dev.Sync(t)
			account(t, &ev.Cmd)
		}
		dev.Sync(ev.Cycle)
		if !dev.CanIssue(ev.Cmd, ev.Cycle) {
			return stacks.BandwidthStack{}, fmt.Errorf("trace: command %d (%v) illegal at cycle %d",
				i, ev.Cmd, ev.Cycle)
		}
		dev.Issue(ev.Cmd, ev.Cycle)
		// Account the issue cycle itself (bank activity now visible).
		var next *dram.Command
		if i+1 < len(events) {
			next = &events[i+1].Cmd
		}
		account(ev.Cycle, next)
		now = ev.Cycle + 1

		// Track how long the device stays busy after this command.
		switch {
		case ev.Cmd.Kind.IsColumn():
			_, end := dev.DataWindow(ev.Cmd.Kind, ev.Cycle)
			if ev.Cmd.Kind.AutoPrecharge() {
				end = ev.Cycle + int64(tim.WriteToPre()) + int64(tim.RP)
			}
			if end > busyUntil {
				busyUntil = end
			}
		case ev.Cmd.Kind == dram.CmdREF:
			if end := ev.Cycle + int64(tim.RFC); end > busyUntil {
				busyUntil = end
			}
		case ev.Cmd.Kind == dram.CmdACT:
			if end := ev.Cycle + int64(tim.RCD); end > busyUntil {
				busyUntil = end
			}
		case ev.Cmd.Kind == dram.CmdPRE || ev.Cmd.Kind == dram.CmdPREA:
			if end := ev.Cycle + int64(tim.RP); end > busyUntil {
				busyUntil = end
			}
		}
	}

	end := busyUntil
	if totalCycles > 0 {
		end = totalCycles
	}
	for t := now; t < end; t++ {
		dev.Sync(t)
		account(t, nil)
	}
	return acct.Stack(), nil
}
