package trace

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"dramstacks/internal/addrmap"
	"dramstacks/internal/dram"
	"dramstacks/internal/memctrl"
	"dramstacks/internal/stacks"
)

func cfg() (dram.Geometry, dram.Timing) { return dram.DDR4_2400() }

func TestWriteReadRoundTrip(t *testing.T) {
	events := []Event{
		{0, dram.Command{Kind: dram.CmdACT, Loc: dram.Loc{Group: 1, Bank: 2, Row: 3}}},
		{16, dram.Command{Kind: dram.CmdRD, Loc: dram.Loc{Group: 1, Bank: 2, Row: 3, Col: 7}}},
		{60, dram.Command{Kind: dram.CmdPRE, Loc: dram.Loc{Group: 1, Bank: 2, Row: 3}}},
		{9360, dram.Command{Kind: dram.CmdREF, Loc: dram.Loc{}}},
	}
	var buf bytes.Buffer
	if err := Write(&buf, events); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("read %d events, want %d", len(got), len(events))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Errorf("event %d = %+v, want %+v", i, got[i], events[i])
		}
	}
}

func TestReadSkipsCommentsRejectsGarbage(t *testing.T) {
	got, err := Read(strings.NewReader("# comment\n\n5 ACT 0 1 2 3 4\n"))
	if err != nil || len(got) != 1 {
		t.Fatalf("got %v, %v", got, err)
	}
	if _, err := Read(strings.NewReader("not a trace\n")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Read(strings.NewReader("5 XYZ 0 0 0 0 0\n")); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestOfflineSimpleBurst(t *testing.T) {
	geo, tim := cfg()
	// ACT then two pipelined reads to one bank group.
	rd1 := int64(tim.RCD)
	rd2 := rd1 + int64(tim.CCDL)
	events := []Event{
		{0, dram.Command{Kind: dram.CmdACT, Loc: dram.Loc{Row: 1}}},
		{rd1, dram.Command{Kind: dram.CmdRD, Loc: dram.Loc{Row: 1, Col: 0}}},
		{rd2, dram.Command{Kind: dram.CmdRD, Loc: dram.Loc{Row: 1, Col: 1}}},
	}
	s, err := BuildBandwidthStack(events, geo, tim, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CheckSum(); err != nil {
		t.Fatal(err)
	}
	if got := s.Cycles[stacks.BWRead]; got != float64(2*tim.BL2) {
		t.Errorf("read cycles = %v, want %d", got, 2*tim.BL2)
	}
	// The ACT window shows up as activate + bank-idle shares.
	if s.Cycles[stacks.BWActivate] <= 0 {
		t.Error("no activate component")
	}
	if s.Cycles[stacks.BWBankIdle] <= 0 {
		t.Error("no bank-idle component")
	}
	// The tCCD_L gap between the reads becomes constraints shares.
	if s.Cycles[stacks.BWConstraints] <= 0 {
		t.Error("no constraints component for the tCCD_L gap")
	}
}

func TestOfflineRejectsBadTraces(t *testing.T) {
	geo, tim := cfg()
	if _, err := BuildBandwidthStack([]Event{
		{0, dram.Command{Kind: dram.CmdRD, Loc: dram.Loc{Row: 1}}},
	}, geo, tim, 0); err == nil {
		t.Error("read on closed bank accepted")
	}
	if _, err := BuildBandwidthStack([]Event{
		{10, dram.Command{Kind: dram.CmdACT, Loc: dram.Loc{Row: 1}}},
		{5, dram.Command{Kind: dram.CmdPRE, Loc: dram.Loc{Row: 1}}},
	}, geo, tim, 0); err == nil {
		t.Error("out-of-order trace accepted")
	}
}

// TestOfflineMatchesOnline drives the real controller under load while
// recording its command trace, then rebuilds the bandwidth stack offline
// and compares: under back pressure (requests always queued) the two
// accountings agree closely on every component.
func TestOfflineMatchesOnline(t *testing.T) {
	geo, tim := cfg()
	dev := dram.NewDevice(geo, tim)
	rec := &Recorder{}
	dev.Trace = rec.Hook()
	ctrl := memctrl.MustNew(dev, addrmap.MustDefault(geo, 1), memctrl.DefaultConfig())

	// Saturating sequential read stream.
	next := uint64(0)
	inflight := 0
	cycles := int64(150_000)
	for now := int64(0); now < cycles; now++ {
		for inflight < 32 {
			if _, ok := ctrl.EnqueueRead(now, next, func(*memctrl.Request, int64) { inflight-- }, nil); !ok {
				break
			}
			inflight++
			next += 64
		}
		ctrl.Tick(now)
	}
	online := ctrl.BandwidthStack()
	offline, err := BuildBandwidthStack(rec.Events(), geo, tim, cycles)
	if err != nil {
		t.Fatal(err)
	}
	if err := offline.CheckSum(); err != nil {
		t.Fatal(err)
	}
	if offline.TotalCycles != online.TotalCycles {
		t.Fatalf("offline covers %d cycles, online %d", offline.TotalCycles, online.TotalCycles)
	}
	on := online.GBps(geo)
	off := offline.GBps(geo)
	for c := stacks.BWComponent(0); c < stacks.NumBWComponents; c++ {
		if d := math.Abs(on[c] - off[c]); d > 0.40 {
			t.Errorf("%v: online %.3f vs offline %.3f GB/s (Δ %.3f)", c, on[c], off[c], d)
		}
	}
	// The headline components must match almost exactly.
	if d := math.Abs(on[stacks.BWRead] - off[stacks.BWRead]); d > 1e-6 {
		t.Errorf("read bandwidth differs: %v vs %v", on[stacks.BWRead], off[stacks.BWRead])
	}
	if d := math.Abs(on[stacks.BWRefresh] - off[stacks.BWRefresh]); d > 1e-6 {
		t.Errorf("refresh differs: %v vs %v", on[stacks.BWRefresh], off[stacks.BWRefresh])
	}
}

func TestOfflineWindowExtension(t *testing.T) {
	geo, tim := cfg()
	events := []Event{
		{0, dram.Command{Kind: dram.CmdACT, Loc: dram.Loc{Row: 1}}},
		{int64(tim.RCD), dram.Command{Kind: dram.CmdRD, Loc: dram.Loc{Row: 1}}},
	}
	s, err := BuildBandwidthStack(events, geo, tim, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if s.TotalCycles != 10_000 {
		t.Errorf("total = %d, want 10000", s.TotalCycles)
	}
	if s.Cycles[stacks.BWIdle] < 9_900 {
		t.Errorf("idle = %v, want nearly all of the window", s.Cycles[stacks.BWIdle])
	}
}

// TestOfflineMatchesOnlineMixedWorkloads runs randomized mixed
// read/write traffic at several load levels and page policies, and
// checks the offline reconstruction against the online accounting. The
// data-carrying components (read, write, refresh) must match exactly;
// the attribution of non-transfer cycles may differ only where the
// offline builder cannot see request arrivals (idle vs blocked), so
// those are compared as a group.
func TestOfflineMatchesOnlineMixedWorkloads(t *testing.T) {
	geo, tim := cfg()
	for seed := int64(1); seed <= 4; seed++ {
		for _, policy := range []memctrl.PagePolicy{memctrl.OpenPage, memctrl.ClosedPage} {
			dev := dram.NewDevice(geo, tim)
			rec := &Recorder{}
			dev.Trace = rec.Hook()
			c := memctrl.DefaultConfig()
			c.Policy = policy
			ctrl := memctrl.MustNew(dev, addrmap.MustDefault(geo, 1), c)

			rng := rand.New(rand.NewSource(seed))
			outstanding := 0
			cycles := int64(60_000)
			intensity := 2 + rng.Intn(6)
			for now := int64(0); now < cycles; now++ {
				if rng.Intn(intensity) == 0 && outstanding < 40 {
					a := uint64(rng.Intn(1<<24)) &^ 63
					if rng.Intn(3) == 0 {
						ctrl.EnqueueWrite(now, a, nil, nil)
					} else if _, ok := ctrl.EnqueueRead(now, a, func(*memctrl.Request, int64) { outstanding-- }, nil); ok {
						outstanding++
					}
				}
				ctrl.Tick(now)
			}
			online := ctrl.BandwidthStack()
			offline, err := BuildBandwidthStack(rec.Events(), geo, tim, cycles)
			if err != nil {
				t.Fatalf("seed %d %v: %v", seed, policy, err)
			}
			if err := offline.CheckSum(); err != nil {
				t.Fatalf("seed %d %v: %v", seed, policy, err)
			}
			on := online.GBps(geo)
			off := offline.GBps(geo)
			for _, c := range []stacks.BWComponent{stacks.BWRead, stacks.BWWrite, stacks.BWRefresh} {
				if d := math.Abs(on[c] - off[c]); d > 1e-6 {
					t.Errorf("seed %d %v: %v differs: online %.4f vs offline %.4f",
						seed, policy, c, on[c], off[c])
				}
			}
			// Pre/act busy windows are command-determined: near-exact.
			for _, c := range []stacks.BWComponent{stacks.BWPrecharge, stacks.BWActivate} {
				if d := math.Abs(on[c] - off[c]); d > 0.15 {
					t.Errorf("seed %d %v: %v differs: online %.4f vs offline %.4f",
						seed, policy, c, on[c], off[c])
				}
			}
			// The remaining components (constraints, bank-idle, idle)
			// depend on queue visibility; their *sum* must still match.
			groupOn := on[stacks.BWConstraints] + on[stacks.BWBankIdle] + on[stacks.BWIdle]
			groupOff := off[stacks.BWConstraints] + off[stacks.BWBankIdle] + off[stacks.BWIdle]
			if d := math.Abs(groupOn - groupOff); d > 0.15 {
				t.Errorf("seed %d %v: wait-group differs: online %.4f vs offline %.4f",
					seed, policy, groupOn, groupOff)
			}
		}
	}
}
