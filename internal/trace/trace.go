// Package trace records DRAM command traces and reconstructs bandwidth
// stacks from them offline. The paper (§IV) notes that instead of
// integrated simulation, "a command trace (including timings) can be
// collected from the hardware or a DRAM simulator, and the bandwidth
// stack can be constructed offline from this trace": this package is
// that path. The trace format is a plain text line per command:
//
//	<cycle> <kind> <rank> <group> <bank> <row> <col>
//
// Offline reconstruction replays the trace through the device timing
// model. It sees only commands, not request arrivals, so cycles in which
// the next command could legally have issued but did not are attributed
// to idle (no request must have been ready) — the one approximation
// relative to the online accounting, which knows the queues.
package trace

import (
	"bufio"
	"fmt"
	"io"

	"dramstacks/internal/dram"
)

// Event is one traced command.
type Event struct {
	Cycle int64
	Cmd   dram.Command
}

// Recorder collects events in memory and can serve as a dram.Device
// trace hook.
type Recorder struct {
	events []Event
}

// Hook returns a function suitable for dram.Device.Trace.
func (r *Recorder) Hook() func(cycle int64, cmd dram.Command) {
	return func(cycle int64, cmd dram.Command) {
		r.events = append(r.events, Event{cycle, cmd})
	}
}

// Events returns the recorded events in issue order.
func (r *Recorder) Events() []Event { return r.events }

// Write serializes events as text, one command per line.
func Write(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	for _, e := range events {
		l := e.Cmd.Loc
		if _, err := fmt.Fprintf(bw, "%d %s %d %d %d %d %d\n",
			e.Cycle, e.Cmd.Kind, l.Rank, l.Group, l.Bank, l.Row, l.Col); err != nil {
			return fmt.Errorf("trace: write: %w", err)
		}
	}
	return bw.Flush()
}

// Read parses a text trace.
func Read(r io.Reader) ([]Event, error) {
	var events []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" || line[0] == '#' {
			continue
		}
		var cycle int64
		var kind string
		var l dram.Loc
		if _, err := fmt.Sscanf(line, "%d %s %d %d %d %d %d",
			&cycle, &kind, &l.Rank, &l.Group, &l.Bank, &l.Row, &l.Col); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
		}
		k, err := parseKind(kind)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
		}
		events = append(events, Event{cycle, dram.Command{Kind: k, Loc: l}})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: read: %w", err)
	}
	return events, nil
}

func parseKind(s string) (dram.CommandKind, error) {
	for k := dram.CommandKind(0); k <= dram.CmdREF; k++ {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown command kind %q", s)
}
