package gap

import (
	"container/heap"
	"math"
	"testing"

	"dramstacks/internal/cpu"
	"dramstacks/internal/graph"
)

// drain consumes all sources round-robin (like cores in lockstep),
// returning per-core item counts and the number of stall items seen.
func drain(t *testing.T, r *Runner, cores int) (items []int64, stalls int64) {
	t.Helper()
	srcs := r.Sources()
	items = make([]int64, cores)
	done := make([]bool, cores)
	remaining := cores
	for steps := 0; remaining > 0; steps++ {
		if steps > 1_000_000_000 {
			t.Fatal("runner did not terminate")
		}
		for c, s := range srcs {
			if done[c] {
				continue
			}
			ins, ok := s.Next()
			if !ok {
				done[c] = true
				remaining--
				continue
			}
			if ins.Kind == cpu.KindStall {
				stalls++
				continue
			}
			items[c]++
		}
	}
	return items, stalls
}

func testGraph() *graph.Graph {
	return graph.Uniform(512, 8, 11)
}

// --- reference implementations -----------------------------------------

func refBFS(g *graph.Graph, src int32) []int32 {
	depth := make([]int32, g.N)
	for i := range depth {
		depth[i] = -1
	}
	depth[src] = 0
	q := []int32{src}
	for len(q) > 0 {
		u := q[0]
		q = q[1:]
		for _, v := range g.Neigh(u) {
			if depth[v] == -1 {
				depth[v] = depth[u] + 1
				q = append(q, v)
			}
		}
	}
	return depth
}

func refComponents(g *graph.Graph) []int32 {
	comp := make([]int32, g.N)
	for i := range comp {
		comp[i] = -1
	}
	for s := int32(0); int(s) < g.N; s++ {
		if comp[s] != -1 {
			continue
		}
		comp[s] = s
		q := []int32{s}
		for len(q) > 0 {
			u := q[0]
			q = q[1:]
			for _, v := range g.Neigh(u) {
				if comp[v] == -1 {
					comp[v] = s
					q = append(q, v)
				}
			}
		}
	}
	return comp
}

type pqItem struct {
	v int32
	d int32
}
type pq []pqItem

func (p pq) Len() int           { return len(p) }
func (p pq) Less(i, j int) bool { return p[i].d < p[j].d }
func (p pq) Swap(i, j int)      { p[i], p[j] = p[j], p[i] }
func (p *pq) Push(x any)        { *p = append(*p, x.(pqItem)) }
func (p *pq) Pop() any          { old := *p; x := old[len(old)-1]; *p = old[:len(old)-1]; return x }

func refDijkstra(g *graph.Graph, src int32) []int32 {
	dist := make([]int32, g.N)
	for i := range dist {
		dist[i] = unreachable
	}
	dist[src] = 0
	q := &pq{{src, 0}}
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		if it.d > dist[it.v] {
			continue
		}
		nb, w := g.NeighW(it.v)
		for i, v := range nb {
			if nd := it.d + w[i]; nd < dist[v] {
				dist[v] = nd
				heap.Push(q, pqItem{v, nd})
			}
		}
	}
	return dist
}

func refTriangles(g *graph.Graph) int64 {
	adj := make([]map[int32]bool, g.N)
	for v := 0; v < g.N; v++ {
		adj[v] = map[int32]bool{}
		for _, u := range g.Neigh(int32(v)) {
			adj[v][u] = true
		}
	}
	var count int64
	for u := int32(0); int(u) < g.N; u++ {
		for _, v := range g.Neigh(u) {
			if v <= u {
				continue
			}
			for _, w := range g.Neigh(v) {
				if w < u && adj[u][w] {
					count++
				}
			}
		}
	}
	return count
}

func refBrandes(g *graph.Graph, src int32) []float64 {
	depth := refBFS(g, src)
	sigma := make([]float64, g.N)
	sigma[src] = 1
	var levels [][]int32
	maxD := int32(0)
	for _, d := range depth {
		if d > maxD {
			maxD = d
		}
	}
	levels = make([][]int32, maxD+1)
	for v := 0; v < g.N; v++ {
		if depth[v] >= 0 {
			levels[depth[v]] = append(levels[depth[v]], int32(v))
		}
	}
	for _, lvl := range levels {
		for _, u := range lvl {
			for _, v := range g.Neigh(u) {
				if depth[v] == depth[u]+1 {
					sigma[v] += sigma[u]
				}
			}
		}
	}
	delta := make([]float64, g.N)
	scores := make([]float64, g.N)
	for d := maxD - 1; d >= 0; d-- {
		for _, u := range levels[d] {
			for _, v := range g.Neigh(u) {
				if depth[v] == depth[u]+1 {
					delta[u] += sigma[u] / sigma[v] * (1 + delta[v])
				}
			}
			if u != src {
				scores[u] += delta[u]
			}
		}
	}
	return scores
}

// --- kernel correctness -------------------------------------------------

func TestBFSMatchesReference(t *testing.T) {
	g := testGraph()
	for _, cores := range []int{1, 3, 8} {
		lay := NewLayout(0)
		src := PickSource(g)
		k := NewBFS(g, cores, lay, []int32{src})
		r := MustNewRunner(k, cores)
		drain(t, r, cores)
		want := refBFS(g, src)
		for v := 0; v < g.N; v++ {
			if k.Depth(int32(v)) != want[v] {
				t.Fatalf("cores=%d: depth[%d] = %d, want %d", cores, v, k.Depth(int32(v)), want[v])
			}
		}
		if k.PushPhases() == 0 {
			t.Errorf("cores=%d: no push phases", cores)
		}
	}
}

func TestBFSDirectionSwitches(t *testing.T) {
	// A low-diameter uniform graph makes the frontier explode, forcing
	// pull levels.
	g := graph.Uniform(2048, 16, 5)
	lay := NewLayout(0)
	k := NewBFS(g, 4, lay, []int32{PickSource(g)})
	r := MustNewRunner(k, 4)
	drain(t, r, 4)
	if k.PullPhases() == 0 {
		t.Error("direction-optimizing bfs never switched to pull")
	}
}

func TestPRMatchesPowerIteration(t *testing.T) {
	g := testGraph()
	lay := NewLayout(0)
	k := NewPR(g, 4, lay)
	r := MustNewRunner(k, 4)
	drain(t, r, 4)

	// Reference pull PageRank with the same parameters and iteration
	// count.
	n := g.N
	rank := make([]float64, n)
	for i := range rank {
		rank[i] = 1 / float64(n)
	}
	for it := 0; it < k.Iterations(); it++ {
		contrib := make([]float64, n)
		for v := 0; v < n; v++ {
			if d := g.Degree(int32(v)); d > 0 {
				contrib[v] = rank[v] / float64(d)
			}
		}
		next := make([]float64, n)
		for v := 0; v < n; v++ {
			var sum float64
			for _, u := range g.Neigh(int32(v)) {
				sum += contrib[u]
			}
			next[v] = (1-0.85)/float64(n) + 0.85*sum
		}
		rank = next
	}
	for v := 0; v < n; v++ {
		if math.Abs(k.Rank(int32(v))-rank[v]) > 1e-12 {
			t.Fatalf("rank[%d] = %v, want %v", v, k.Rank(int32(v)), rank[v])
		}
	}
	if k.Iterations() == 0 {
		t.Error("pr ran zero iterations")
	}
}

func TestCCMatchesReference(t *testing.T) {
	g := testGraph()
	for _, cores := range []int{1, 4} {
		lay := NewLayout(0)
		k := NewCC(g, cores, lay)
		r := MustNewRunner(k, cores)
		drain(t, r, cores)
		want := refComponents(g)
		// Labels must induce the same partition: same component ↔ same
		// label.
		rep := map[int32]int32{}
		for v := 0; v < g.N; v++ {
			got := k.Component(int32(v))
			if w, seen := rep[want[v]]; seen {
				if got != w {
					t.Fatalf("cores=%d: vertex %d label %d, component expects %d", cores, v, got, w)
				}
			} else {
				rep[want[v]] = got
			}
		}
		if len(rep) == 0 {
			t.Fatal("no components found")
		}
	}
}

func TestSSSPMatchesDijkstra(t *testing.T) {
	g := testGraph()
	g.AddUniformWeights(64, 7)
	src := PickSource(g)
	for _, cores := range []int{1, 4} {
		lay := NewLayout(0)
		k := NewSSSP(g, cores, lay, src)
		r := MustNewRunner(k, cores)
		drain(t, r, cores)
		want := refDijkstra(g, src)
		for v := 0; v < g.N; v++ {
			if k.Dist(int32(v)) != want[v] {
				t.Fatalf("cores=%d: dist[%d] = %d, want %d", cores, v, k.Dist(int32(v)), want[v])
			}
		}
	}
}

func TestTCMatchesBruteForce(t *testing.T) {
	g := graph.Uniform(128, 10, 21)
	g.Dedup()
	want := refTriangles(g)
	for _, cores := range []int{1, 4} {
		lay := NewLayout(0)
		k := NewTC(g, cores, lay)
		r := MustNewRunner(k, cores)
		drain(t, r, cores)
		if k.Triangles() != want {
			t.Fatalf("cores=%d: triangles = %d, want %d", cores, k.Triangles(), want)
		}
	}
	if want == 0 {
		t.Fatal("test graph has no triangles; pick a denser one")
	}
}

func TestBCMatchesBrandes(t *testing.T) {
	g := testGraph()
	src := PickSource(g)
	for _, cores := range []int{1, 4} {
		lay := NewLayout(0)
		k := NewBC(g, cores, lay, []int32{src})
		r := MustNewRunner(k, cores)
		drain(t, r, cores)
		want := refBrandes(g, src)
		for v := 0; v < g.N; v++ {
			if math.Abs(k.Score(int32(v))-want[v]) > 1e-6*(1+math.Abs(want[v])) {
				t.Fatalf("cores=%d: score[%d] = %v, want %v", cores, v, k.Score(int32(v)), want[v])
			}
		}
	}
}

// --- runner mechanics ----------------------------------------------------

func TestRunnerBarrierStalls(t *testing.T) {
	// With many cores and a small graph, some cores finish their phase
	// shares early and must stall at barriers.
	g := testGraph()
	lay := NewLayout(0)
	k := NewBFS(g, 8, lay, []int32{PickSource(g)})
	r := MustNewRunner(k, 8)
	_, stalls := drain(t, r, 8)
	if stalls == 0 {
		t.Error("no barrier stalls observed on an unbalanced workload")
	}
}

func TestRunnerAllWorkDelivered(t *testing.T) {
	g := testGraph()
	counts := map[int]int64{}
	for _, cores := range []int{1, 2, 8} {
		lay := NewLayout(0)
		k := NewPR(g, cores, lay)
		r := MustNewRunner(k, cores)
		items, _ := drain(t, r, cores)
		var total int64
		for _, n := range items {
			total += n
		}
		counts[cores] = total
	}
	// The same algorithm emits the same total work regardless of the
	// core count.
	if counts[1] != counts[2] || counts[2] != counts[8] {
		t.Errorf("work differs by core count: %v", counts)
	}
	if counts[1] == 0 {
		t.Error("no work emitted")
	}
}

func TestBuildAllBenchmarks(t *testing.T) {
	for _, name := range Benchmarks() {
		g := graph.Uniform(256, 8, 13)
		if err := Prepare(name, g); err != nil {
			t.Fatal(err)
		}
		r, k, err := Build(name, g, 2)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if k.Name() != name {
			t.Errorf("kernel name = %q, want %q", k.Name(), name)
		}
		items, _ := drain(t, r, 2)
		if items[0]+items[1] == 0 {
			t.Errorf("%s emitted no work", name)
		}
	}
	if _, _, err := Build("nope", testGraph(), 2); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if err := Prepare("nope", testGraph()); err == nil {
		t.Error("unknown benchmark accepted by Prepare")
	}
	if _, _, err := Build("sssp", testGraph(), 2); err == nil {
		t.Error("unprepared sssp graph accepted")
	}
}

func TestRunnerRejectsBadCores(t *testing.T) {
	if _, err := NewRunner(NewPR(testGraph(), 1, NewLayout(0)), 0); err == nil {
		t.Error("zero cores accepted")
	}
}

func TestLayoutArraysDisjoint(t *testing.T) {
	lay := NewLayout(0)
	a := lay.Array(1000, 4)
	b := lay.Array(1000, 8)
	endA := a.Addr(999) + 4
	if b.Base < endA {
		t.Errorf("arrays overlap: a ends %#x, b starts %#x", endA, b.Base)
	}
	if a.Base%4096 != 0 || b.Base%4096 != 0 {
		t.Error("arrays not page aligned")
	}
	if a.Addr(2)-a.Addr(1) != 4 || b.Addr(2)-b.Addr(1) != 8 {
		t.Error("element stride wrong")
	}
}

func TestBFSMultipleSources(t *testing.T) {
	g := testGraph()
	lay := NewLayout(0)
	srcs := []int32{PickSource(g), 0, 7}
	k := NewBFS(g, 2, lay, srcs)
	r := MustNewRunner(k, 2)
	drain(t, r, 2)
	// The final depths are those of the LAST source's BFS.
	want := refBFS(g, srcs[len(srcs)-1])
	for v := 0; v < g.N; v++ {
		if k.Depth(int32(v)) != want[v] {
			t.Fatalf("depth[%d] = %d, want %d (last source)", v, k.Depth(int32(v)), want[v])
		}
	}
}

func TestBCMultipleSourcesAccumulate(t *testing.T) {
	g := testGraph()
	lay := NewLayout(0)
	srcs := []int32{PickSource(g), 3}
	k := NewBC(g, 2, lay, srcs)
	r := MustNewRunner(k, 2)
	drain(t, r, 2)
	a := refBrandes(g, srcs[0])
	b := refBrandes(g, srcs[1])
	for v := 0; v < g.N; v++ {
		want := a[v] + b[v]
		if math.Abs(k.Score(int32(v))-want) > 1e-6*(1+math.Abs(want)) {
			t.Fatalf("score[%d] = %v, want %v (sum over sources)", v, k.Score(int32(v)), want)
		}
	}
}

func TestRunnerPhasesCount(t *testing.T) {
	g := testGraph()
	lay := NewLayout(0)
	k := NewPR(g, 2, lay)
	r := MustNewRunner(k, 2)
	drain(t, r, 2)
	// Two phases (contrib + gather) per iteration.
	if want := 2 * k.Iterations(); r.Phases() != want {
		t.Errorf("phases = %d, want %d", r.Phases(), want)
	}
}
