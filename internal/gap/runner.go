// Package gap implements the six GAP benchmark kernels (Beamer et al.)
// as instruction-stream generators for the simulated cores: bfs
// (direction-optimizing breadth-first search), pr (pull PageRank), cc
// (Shiloach-Vishkin connected components), bc (Brandes betweenness
// centrality), sssp (frontier-based single-source shortest paths) and tc
// (merge-based triangle counting).
//
// Each kernel runs the real algorithm over a real in-memory CSR graph;
// every data-structure access it performs is also emitted as a load or
// store at that structure's simulated address, so the cores present the
// genuine mix of streaming (CSR offsets/neighbors) and irregular
// (per-vertex property) traffic that makes graph workloads memory bound.
//
// Kernels are phase-parallel: vertices are partitioned over cores, and
// cores synchronize at phase barriers (BFS levels, PageRank iterations,
// relaxation rounds). A core that reaches a barrier early emits stall
// items (cpu.KindStall) until the others catch up, which the cycle
// stacks report as idle time — the paper's Fig. 7 shows exactly this for
// the low-parallelism phase of bfs.
package gap

import (
	"fmt"

	"dramstacks/internal/cpu"
)

// Kernel is one GAP benchmark, generated phase by phase.
type Kernel interface {
	// Name returns the GAP short name (bfs, pr, cc, bc, sssp, tc).
	Name() string
	// NextPhase advances the algorithm to its next parallel phase,
	// returning false when the algorithm has completed. It is called
	// once before the first Fill and then every time all cores have
	// drained the current phase.
	NextPhase() bool
	// Fill appends up to max instruction items of core's share of the
	// current phase to buf and reports whether the core still has work
	// remaining in this phase.
	Fill(core int, buf []cpu.Instr, max int) ([]cpu.Instr, bool)
}

// chunk is how many instruction items a source buffers per refill.
const chunk = 4096

// Runner coordinates one kernel across cores with barrier semantics and
// hands out one cpu.Source per core.
type Runner struct {
	k     Kernel
	cores int

	bufs    [][]cpu.Instr
	pos     []int
	barrier []bool
	waiting int
	done    bool
	phases  int
}

// NewRunner prepares a kernel for the given core count.
func NewRunner(k Kernel, cores int) (*Runner, error) {
	if cores <= 0 {
		return nil, fmt.Errorf("gap: cores must be positive, got %d", cores)
	}
	r := &Runner{
		k:       k,
		cores:   cores,
		bufs:    make([][]cpu.Instr, cores),
		pos:     make([]int, cores),
		barrier: make([]bool, cores),
	}
	if !k.NextPhase() {
		r.done = true
	} else {
		r.phases = 1
	}
	return r, nil
}

// MustNewRunner is NewRunner for known-good arguments.
func MustNewRunner(k Kernel, cores int) *Runner {
	r, err := NewRunner(k, cores)
	if err != nil {
		panic(err)
	}
	return r
}

// Phases returns how many phases have been started so far.
func (r *Runner) Phases() int { return r.phases }

// Sources returns the per-core instruction sources.
func (r *Runner) Sources() []cpu.Source {
	out := make([]cpu.Source, r.cores)
	for i := range out {
		out[i] = &coreSource{r: r, core: i}
	}
	return out
}

type coreSource struct {
	r    *Runner
	core int
}

var stall = cpu.Instr{Kind: cpu.KindStall}

// Next implements cpu.Source.
func (s *coreSource) Next() (cpu.Instr, bool) {
	r := s.r
	c := s.core
	for {
		if r.pos[c] < len(r.bufs[c]) {
			ins := r.bufs[c][r.pos[c]]
			r.pos[c]++
			return ins, true
		}
		if r.done {
			return cpu.Instr{}, false
		}
		if !r.barrier[c] {
			// Refill from the current phase.
			buf, more := r.k.Fill(c, r.bufs[c][:0], chunk)
			r.bufs[c] = buf
			r.pos[c] = 0
			if len(buf) > 0 {
				continue
			}
			if more {
				// Kernel promised more but produced nothing: treat as
				// phase-exhausted to guarantee progress.
				more = false
			}
			r.barrier[c] = true
			r.waiting++
		}
		// At the barrier: last arrival opens the next phase.
		if r.waiting == r.cores {
			if !r.k.NextPhase() {
				r.done = true
				return cpu.Instr{}, false
			}
			r.phases++
			for i := range r.barrier {
				r.barrier[i] = false
			}
			r.waiting = 0
			continue
		}
		return stall, true
	}
}
