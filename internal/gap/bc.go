package gap

import (
	"dramstacks/internal/cpu"
	"dramstacks/internal/graph"
)

// BC is Brandes betweenness centrality from a set of sample sources: per
// source, a forward level-synchronous BFS that counts shortest paths
// (sigma), then a backward sweep over the levels accumulating
// dependencies (delta) into the centrality scores.
type BC struct {
	kernelBase
	depth Array // 4 B per vertex
	sigma Array // 4 B per vertex
	delta Array // 4 B per vertex
	score Array // 4 B per vertex
	queue []Array

	d      []int32
	sig    []float64
	del    []float64
	scores []float64

	levels   [][]int32 // frontier per level of the current source
	next     [][]int32
	sources  []int32
	srcIdx   int
	level    int32 // forward: level being expanded; backward: level index
	backward bool
	started  bool

	cur []bcCur
}

type bcCur struct {
	i, hi    int
	u        int32
	ei, eEnd int64
	active   bool
}

// NewBC builds the kernel for the given sample sources.
func NewBC(g *graph.Graph, cores int, lay *Layout, sources []int32) *BC {
	b := &BC{
		kernelBase: newKernelBase(g, cores, lay, 606),
		depth:      lay.Array(int64(g.N), 4),
		sigma:      lay.Array(int64(g.N), 4),
		delta:      lay.Array(int64(g.N), 4),
		score:      lay.Array(int64(g.N), 4),
		d:          make([]int32, g.N),
		sig:        make([]float64, g.N),
		del:        make([]float64, g.N),
		scores:     make([]float64, g.N),
		next:       make([][]int32, cores),
		sources:    append([]int32(nil), sources...),
		cur:        make([]bcCur, cores),
	}
	for i := 0; i < cores; i++ {
		b.queue = append(b.queue, lay.Array(int64(g.N), 4))
	}
	return b
}

// Name implements Kernel.
func (b *BC) Name() string { return "bc" }

// Score returns v's accumulated centrality (for correctness tests).
func (b *BC) Score(v int32) float64 { return b.scores[v] }

func (b *BC) initSource(src int32) {
	for i := range b.d {
		b.d[i] = -1
		b.sig[i] = 0
		b.del[i] = 0
	}
	b.d[src] = 0
	b.sig[src] = 1
	b.levels = b.levels[:0]
	b.levels = append(b.levels, []int32{src})
	b.level = 0
	b.backward = false
}

// NextPhase implements Kernel: forward phases expand one BFS level each;
// backward phases accumulate one level each, deepest first.
func (b *BC) NextPhase() bool {
	if !b.started {
		if len(b.sources) == 0 {
			return false
		}
		b.started = true
		b.initSource(b.sources[0])
	} else if !b.backward {
		// Forward level finished: gather the next frontier.
		var frontier []int32
		for c := range b.next {
			frontier = append(frontier, b.next[c]...)
			b.next[c] = b.next[c][:0]
		}
		if len(frontier) > 0 {
			b.levels = append(b.levels, frontier)
			b.level++
		} else {
			// Forward done: start the backward sweep from the deepest
			// level with successors.
			b.backward = true
			b.level = int32(len(b.levels)) - 2
			if b.level < 0 {
				if !b.advanceSource() {
					return false
				}
			}
		}
	} else {
		b.level--
		if b.level < 0 {
			if !b.advanceSource() {
				return false
			}
		}
	}

	for c := 0; c < b.cores; c++ {
		lo, hi := sliceRange(c, b.cores, len(b.levels[b.level]))
		b.cur[c] = bcCur{i: lo, hi: hi}
	}
	return true
}

func (b *BC) advanceSource() bool {
	b.srcIdx++
	if b.srcIdx >= len(b.sources) {
		return false
	}
	b.initSource(b.sources[b.srcIdx])
	return true
}

// Fill implements Kernel.
func (b *BC) Fill(core int, buf []cpu.Instr, max int) ([]cpu.Instr, bool) {
	if b.backward {
		return b.fillBackward(core, buf, max)
	}
	return b.fillForward(core, buf, max)
}

// fillForward expands the current level, counting shortest paths.
func (b *BC) fillForward(core int, buf []cpu.Instr, max int) ([]cpu.Instr, bool) {
	e := b.begin(core, buf, max)
	cur := &b.cur[core]
	frontier := b.levels[b.level]
	for !e.full() {
		if !cur.active {
			if cur.i >= cur.hi {
				return e.buf, false
			}
			cur.u = frontier[cur.i]
			cur.i++
			e.load(b.off, int64(cur.u), 2)
			e.load(b.sigma, int64(cur.u), 1)
			cur.ei, cur.eEnd = b.g.Offsets[cur.u], b.g.Offsets[cur.u+1]
			cur.active = true
		}
		for cur.ei < cur.eEnd && !e.full() {
			v := b.g.Neighbors[cur.ei]
			e.load(b.nbr, cur.ei, 1)
			e.load(b.depth, int64(v), 1)
			e.branch(bfsMispredict)
			switch {
			case b.d[v] == -1:
				b.d[v] = b.level + 1
				b.sig[v] += b.sig[cur.u]
				e.store(b.depth, int64(v), 1)
				e.store(b.sigma, int64(v), 1)
				e.store(b.queue[core], int64(len(b.next[core])), 1)
				b.next[core] = append(b.next[core], v)
			case b.d[v] == b.level+1:
				// Another shortest path into v.
				b.sig[v] += b.sig[cur.u]
				e.load(b.sigma, int64(v), 1)
				e.store(b.sigma, int64(v), 1)
			}
			cur.ei++
		}
		if cur.ei >= cur.eEnd {
			cur.active = false
		}
	}
	return e.buf, true
}

// fillBackward accumulates dependencies for the current level.
func (b *BC) fillBackward(core int, buf []cpu.Instr, max int) ([]cpu.Instr, bool) {
	e := b.begin(core, buf, max)
	cur := &b.cur[core]
	frontier := b.levels[b.level]
	for !e.full() {
		if !cur.active {
			if cur.i >= cur.hi {
				return e.buf, false
			}
			cur.u = frontier[cur.i]
			cur.i++
			e.load(b.off, int64(cur.u), 2)
			e.load(b.sigma, int64(cur.u), 1)
			cur.ei, cur.eEnd = b.g.Offsets[cur.u], b.g.Offsets[cur.u+1]
			cur.active = true
		}
		u := cur.u
		for cur.ei < cur.eEnd && !e.full() {
			v := b.g.Neighbors[cur.ei]
			e.load(b.nbr, cur.ei, 1)
			e.load(b.depth, int64(v), 1)
			e.branch(bfsMispredict)
			if b.d[v] == b.d[u]+1 {
				e.load(b.sigma, int64(v), 1)
				e.load(b.delta, int64(v), 1)
				b.del[u] += b.sig[u] / b.sig[v] * (1 + b.del[v])
				e.store(b.delta, int64(u), 2)
			}
			cur.ei++
		}
		if cur.ei >= cur.eEnd {
			if u != b.sources[b.srcIdx] {
				b.scores[u] += b.del[u]
				e.load(b.score, int64(u), 1)
				e.store(b.score, int64(u), 1)
			}
			cur.active = false
		}
	}
	return e.buf, true
}
