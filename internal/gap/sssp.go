package gap

import (
	"dramstacks/internal/cpu"
	"dramstacks/internal/graph"
)

// SSSP is frontier-based single-source shortest paths: per round, relax
// every edge leaving the frontier and collect improved vertices into the
// next frontier (Bellman-Ford over frontiers, the unbucketed core of
// GAP's delta-stepping). The graph must carry weights.
type SSSP struct {
	kernelBase
	dist  Array // 4 B distance per vertex
	queue []Array

	d        []int32
	inNext   []bool
	frontier []int32
	next     [][]int32

	src     int32
	started bool
	rounds  int
	// MaxRounds bounds pathological inputs (negative-free graphs with
	// random weights converge in a few dozen rounds).
	MaxRounds int

	cur []ssspCur
}

type ssspCur struct {
	i, hi    int
	u        int32
	ei, eEnd int64
	active   bool
}

const unreachable = int32(1) << 30

// NewSSSP builds the kernel; it panics if the graph has no weights
// (a programming error in the experiment setup).
func NewSSSP(g *graph.Graph, cores int, lay *Layout, src int32) *SSSP {
	if g.Weights == nil {
		panic("gap: sssp needs a weighted graph")
	}
	s := &SSSP{
		kernelBase: newKernelBase(g, cores, lay, 404),
		dist:       lay.Array(int64(g.N), 4),
		d:          make([]int32, g.N),
		inNext:     make([]bool, g.N),
		next:       make([][]int32, cores),
		src:        src,
		MaxRounds:  64,
		cur:        make([]ssspCur, cores),
	}
	for i := 0; i < cores; i++ {
		s.queue = append(s.queue, lay.Array(int64(g.N), 4))
	}
	for i := range s.d {
		s.d[i] = unreachable
	}
	return s
}

// Name implements Kernel.
func (s *SSSP) Name() string { return "sssp" }

// Dist returns v's final distance (for correctness tests).
func (s *SSSP) Dist(v int32) int32 { return s.d[v] }

// Rounds returns how many relaxation rounds ran.
func (s *SSSP) Rounds() int { return s.rounds }

// NextPhase implements Kernel: one phase is one relaxation round.
func (s *SSSP) NextPhase() bool {
	if !s.started {
		s.started = true
		s.d[s.src] = 0
		s.frontier = append(s.frontier[:0], s.src)
	} else {
		s.frontier = s.frontier[:0]
		for c := range s.next {
			for _, v := range s.next[c] {
				s.inNext[v] = false
			}
			s.frontier = append(s.frontier, s.next[c]...)
			s.next[c] = s.next[c][:0]
		}
		s.rounds++
		if len(s.frontier) == 0 || s.rounds >= s.MaxRounds {
			return false
		}
	}
	for c := 0; c < s.cores; c++ {
		lo, hi := sliceRange(c, s.cores, len(s.frontier))
		s.cur[c] = ssspCur{i: lo, hi: hi}
	}
	return true
}

// Fill implements Kernel.
func (s *SSSP) Fill(core int, buf []cpu.Instr, max int) ([]cpu.Instr, bool) {
	e := s.begin(core, buf, max)
	cur := &s.cur[core]
	for !e.full() {
		if !cur.active {
			if cur.i >= cur.hi {
				return e.buf, false
			}
			cur.u = s.frontier[cur.i]
			cur.i++
			e.load(s.off, int64(cur.u), 2)
			e.load(s.dist, int64(cur.u), 1)
			cur.ei, cur.eEnd = s.g.Offsets[cur.u], s.g.Offsets[cur.u+1]
			cur.active = true
		}
		for cur.ei < cur.eEnd && !e.full() {
			v := s.g.Neighbors[cur.ei]
			w := s.g.Weights[cur.ei]
			e.load(s.nbr, cur.ei, 1)
			e.load(s.wgt, cur.ei, 1)
			e.load(s.dist, int64(v), 1)
			e.branch(0.05)
			if nd := s.d[cur.u] + w; nd < s.d[v] {
				s.d[v] = nd
				e.store(s.dist, int64(v), 1)
				if !s.inNext[v] {
					s.inNext[v] = true
					e.store(s.queue[core], int64(len(s.next[core])), 1)
					s.next[core] = append(s.next[core], v)
				}
			}
			cur.ei++
		}
		if cur.ei >= cur.eEnd {
			cur.active = false
		}
	}
	return e.buf, true
}
