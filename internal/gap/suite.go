package gap

import (
	"fmt"

	"dramstacks/internal/graph"
)

// Benchmarks lists the GAP kernel names in the paper's Fig. 9 order.
func Benchmarks() []string { return []string{"bc", "bfs", "cc", "pr", "sssp", "tc"} }

// PickSource returns a deterministic, well-connected source vertex: the
// first vertex whose degree is at least the average (GAP samples random
// non-trivial sources; a fixed one keeps experiments reproducible).
func PickSource(g *graph.Graph) int32 {
	if g.N == 0 {
		return 0
	}
	avg := g.Edges() / int64(g.N)
	for v := 0; v < g.N; v++ {
		if g.Degree(int32(v)) >= avg && g.Degree(int32(v)) > 0 {
			return int32(v)
		}
	}
	return 0
}

// Prepare mutates g as the named kernel requires: uniform weights for
// sssp, a deduplicated sorted-adjacency simple graph for tc. Call it
// once per graph before Build; it is idempotent but not safe to run
// concurrently with kernels reading the graph.
func Prepare(name string, g *graph.Graph) error {
	switch name {
	case "sssp":
		if g.Weights == nil {
			g.AddUniformWeights(64, 7)
		}
	case "tc":
		g.Dedup()
	case "bfs", "pr", "cc", "bc":
	default:
		return fmt.Errorf("gap: unknown benchmark %q (have %v)", name, Benchmarks())
	}
	return nil
}

// Build constructs the named kernel over a prepared graph (see Prepare)
// for the given core count and returns a ready Runner. Build does not
// mutate the graph, so concurrent Builds over one shared graph are safe.
func Build(name string, g *graph.Graph, cores int) (*Runner, Kernel, error) {
	lay := NewLayout(0)
	var k Kernel
	switch name {
	case "bfs":
		k = NewBFS(g, cores, lay, []int32{PickSource(g)})
	case "pr":
		k = NewPR(g, cores, lay)
	case "cc":
		k = NewCC(g, cores, lay)
	case "bc":
		k = NewBC(g, cores, lay, []int32{PickSource(g)})
	case "sssp":
		if g.Weights == nil {
			return nil, nil, fmt.Errorf("gap: sssp needs a prepared (weighted) graph; call Prepare first")
		}
		k = NewSSSP(g, cores, lay, PickSource(g))
	case "tc":
		k = NewTC(g, cores, lay)
	default:
		return nil, nil, fmt.Errorf("gap: unknown benchmark %q (have %v)", name, Benchmarks())
	}
	r, err := NewRunner(k, cores)
	if err != nil {
		return nil, nil, err
	}
	return r, k, nil
}
