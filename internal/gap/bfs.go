package gap

import (
	"dramstacks/internal/cpu"
	"dramstacks/internal/graph"
)

// bfsMispredict is the per-edge branch misprediction probability of the
// frontier-membership tests (irregular, data-dependent branches).
const bfsMispredict = 0.04

// BFS is the GAP direction-optimizing breadth-first search: push (top
// down) levels while the frontier is small, pull (bottom up) levels when
// the frontier's edge count grows past |E|/alpha, and back to push when
// the frontier shrinks below |V|/beta — the forward/backward phase
// structure visible in the paper's Fig. 7.
type BFS struct {
	kernelBase
	depth Array // int32 per vertex
	queue []Array

	d        []int32
	frontier []int32
	next     [][]int32

	sources []int32
	srcIdx  int
	level   int32
	pull    bool
	started bool

	cur []bfsCur

	// Direction-switch parameters (GAP defaults).
	alpha, beta int64

	// Telemetry.
	pushPhases, pullPhases int
}

type bfsCur struct {
	i, hi    int   // work-list window (push) or vertex window (pull)
	u        int32 // vertex currently being expanded
	ei, eEnd int64
	active   bool
}

// NewBFS builds the kernel for the given sources (one BFS per source,
// run back to back).
func NewBFS(g *graph.Graph, cores int, lay *Layout, sources []int32) *BFS {
	b := &BFS{
		kernelBase: newKernelBase(g, cores, lay, 101),
		depth:      lay.Array(int64(g.N), 4),
		d:          make([]int32, g.N),
		next:       make([][]int32, cores),
		sources:    append([]int32(nil), sources...),
		cur:        make([]bfsCur, cores),
		alpha:      14,
		beta:       24,
	}
	for i := 0; i < cores; i++ {
		b.queue = append(b.queue, lay.Array(int64(g.N), 4))
	}
	return b
}

// Name implements Kernel.
func (b *BFS) Name() string { return "bfs" }

// Depth returns the final depth of vertex v for the last source
// (-1 if unreached); used by tests to check the algorithm itself.
func (b *BFS) Depth(v int32) int32 { return b.d[v] }

// PushPhases and PullPhases report the direction mix.
func (b *BFS) PushPhases() int { return b.pushPhases }

// PullPhases reports how many pull (bottom-up) levels ran.
func (b *BFS) PullPhases() int { return b.pullPhases }

func (b *BFS) initSource(src int32) {
	for i := range b.d {
		b.d[i] = -1
	}
	b.d[src] = 0
	b.frontier = append(b.frontier[:0], src)
	b.level = 0
	b.pull = false
}

// NextPhase implements Kernel: one phase is one BFS level.
func (b *BFS) NextPhase() bool {
	if !b.started {
		if len(b.sources) == 0 {
			return false
		}
		b.started = true
		b.initSource(b.sources[0])
	} else {
		// Collect the next frontier produced by the finished level.
		b.frontier = b.frontier[:0]
		for c := range b.next {
			b.frontier = append(b.frontier, b.next[c]...)
			b.next[c] = b.next[c][:0]
		}
		b.level++
		if len(b.frontier) == 0 {
			// This source is exhausted; move to the next one.
			b.srcIdx++
			if b.srcIdx >= len(b.sources) {
				return false
			}
			b.initSource(b.sources[b.srcIdx])
		}
	}

	// Direction-optimization heuristic.
	var scout int64
	for _, u := range b.frontier {
		scout += b.g.Degree(u)
	}
	if !b.pull && scout > b.g.Edges()/b.alpha {
		b.pull = true
	} else if b.pull && int64(len(b.frontier)) < int64(b.g.N)/b.beta {
		b.pull = false
	}
	if b.pull {
		b.pullPhases++
	} else {
		b.pushPhases++
	}

	// Set up the per-core cursors.
	for c := 0; c < b.cores; c++ {
		cur := &b.cur[c]
		*cur = bfsCur{u: -1}
		if b.pull {
			lo, hi := b.vertexRange(c, b.g.N)
			cur.i, cur.hi = int(lo), int(hi)
		} else {
			cur.i, cur.hi = sliceRange(c, b.cores, len(b.frontier))
		}
	}
	return true
}

// Fill implements Kernel.
func (b *BFS) Fill(core int, buf []cpu.Instr, max int) ([]cpu.Instr, bool) {
	if b.pull {
		return b.fillPull(core, buf, max)
	}
	return b.fillPush(core, buf, max)
}

// fillPush expands this core's slice of the frontier top-down.
func (b *BFS) fillPush(core int, buf []cpu.Instr, max int) ([]cpu.Instr, bool) {
	e := b.begin(core, buf, max)
	cur := &b.cur[core]
	for !e.full() {
		if !cur.active {
			if cur.i >= cur.hi {
				return e.buf, false
			}
			cur.u = b.frontier[cur.i]
			cur.i++
			e.load(b.off, int64(cur.u), 2) // offsets[u], offsets[u+1]
			cur.ei, cur.eEnd = b.g.Offsets[cur.u], b.g.Offsets[cur.u+1]
			cur.active = true
		}
		for cur.ei < cur.eEnd && !e.full() {
			v := b.g.Neighbors[cur.ei]
			e.load(b.nbr, cur.ei, 1)
			e.load(b.depth, int64(v), 1)
			e.branch(bfsMispredict)
			if b.d[v] == -1 {
				b.d[v] = b.level + 1
				e.store(b.depth, int64(v), 1)
				e.store(b.queue[core], int64(len(b.next[core])), 1)
				b.next[core] = append(b.next[core], v)
			}
			cur.ei++
		}
		if cur.ei >= cur.eEnd {
			cur.active = false
		}
	}
	return e.buf, true
}

// fillPull scans this core's vertex range bottom-up.
func (b *BFS) fillPull(core int, buf []cpu.Instr, max int) ([]cpu.Instr, bool) {
	e := b.begin(core, buf, max)
	cur := &b.cur[core]
	for !e.full() {
		if !cur.active {
			if cur.i >= cur.hi {
				return e.buf, false
			}
			v := int32(cur.i)
			cur.i++
			e.load(b.depth, int64(v), 1)
			if b.d[v] != -1 {
				continue
			}
			cur.u = v
			e.load(b.off, int64(v), 2)
			cur.ei, cur.eEnd = b.g.Offsets[v], b.g.Offsets[v+1]
			cur.active = true
		}
		for cur.ei < cur.eEnd && !e.full() {
			u := b.g.Neighbors[cur.ei]
			e.load(b.nbr, cur.ei, 1)
			e.load(b.depth, int64(u), 1)
			e.branch(bfsMispredict)
			cur.ei++
			if b.d[u] == b.level {
				// Parent found: claim v and stop scanning.
				b.d[cur.u] = b.level + 1
				e.store(b.depth, int64(cur.u), 1)
				e.store(b.queue[core], int64(len(b.next[core])), 1)
				b.next[core] = append(b.next[core], cur.u)
				cur.active = false
				break
			}
		}
		if cur.ei >= cur.eEnd {
			cur.active = false
		}
	}
	return e.buf, true
}
