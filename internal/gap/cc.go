package gap

import (
	"dramstacks/internal/cpu"
	"dramstacks/internal/graph"
)

// CC is Shiloach-Vishkin-style connected components: alternating hook
// phases (propagate the minimum label across every edge) and compress
// phases (pointer-jump labels to their root) until no label changes.
type CC struct {
	kernelBase
	comp Array // 4 B label per vertex

	labels  []int32
	changed []bool // per core

	compress bool
	started  bool
	done     bool
	rounds   int

	cur []ccCur
}

type ccCur struct {
	v, hi    int32
	ei, eEnd int64
	active   bool
}

// NewCC builds the kernel.
func NewCC(g *graph.Graph, cores int, lay *Layout) *CC {
	c := &CC{
		kernelBase: newKernelBase(g, cores, lay, 303),
		comp:       lay.Array(int64(g.N), 4),
		labels:     make([]int32, g.N),
		changed:    make([]bool, cores),
		cur:        make([]ccCur, cores),
	}
	for i := range c.labels {
		c.labels[i] = int32(i)
	}
	return c
}

// Name implements Kernel.
func (c *CC) Name() string { return "cc" }

// Component returns v's final label (for correctness tests).
func (c *CC) Component(v int32) int32 { return c.labels[v] }

// Rounds returns how many hook+compress rounds ran.
func (c *CC) Rounds() int { return c.rounds }

// NextPhase implements Kernel: hook and compress phases alternate.
func (c *CC) NextPhase() bool {
	if c.done {
		return false
	}
	if !c.started {
		c.started = true
		c.compress = false
	} else if !c.compress {
		c.compress = true
	} else {
		// A full round finished: converged when no hook changed a label.
		c.rounds++
		any := false
		for i := range c.changed {
			any = any || c.changed[i]
			c.changed[i] = false
		}
		if !any {
			c.done = true
			return false
		}
		c.compress = false
	}
	for i := 0; i < c.cores; i++ {
		lo, hi := c.vertexRange(i, c.g.N)
		c.cur[i] = ccCur{v: lo, hi: hi}
	}
	return true
}

// Fill implements Kernel.
func (c *CC) Fill(core int, buf []cpu.Instr, max int) ([]cpu.Instr, bool) {
	if c.compress {
		return c.fillCompress(core, buf, max)
	}
	return c.fillHook(core, buf, max)
}

// fillHook propagates the minimum label across each edge of this core's
// vertices.
func (c *CC) fillHook(core int, buf []cpu.Instr, max int) ([]cpu.Instr, bool) {
	e := c.begin(core, buf, max)
	cur := &c.cur[core]
	for !e.full() {
		if !cur.active {
			if cur.v >= cur.hi {
				return e.buf, false
			}
			e.load(c.off, int64(cur.v), 2)
			e.load(c.comp, int64(cur.v), 1)
			cur.ei, cur.eEnd = c.g.Offsets[cur.v], c.g.Offsets[cur.v+1]
			cur.active = true
		}
		for cur.ei < cur.eEnd && !e.full() {
			u := cur.v
			v := c.g.Neighbors[cur.ei]
			e.load(c.nbr, cur.ei, 1)
			e.load(c.comp, int64(v), 1)
			e.branch(0.05)
			if c.labels[v] < c.labels[u] {
				c.labels[u] = c.labels[v]
				e.store(c.comp, int64(u), 1)
				c.changed[core] = true
			} else if c.labels[u] < c.labels[v] {
				c.labels[v] = c.labels[u]
				e.store(c.comp, int64(v), 1)
				c.changed[core] = true
			}
			cur.ei++
		}
		if cur.ei >= cur.eEnd {
			cur.active = false
			cur.v++
		}
	}
	return e.buf, true
}

// fillCompress pointer-jumps every label to its current root.
func (c *CC) fillCompress(core int, buf []cpu.Instr, max int) ([]cpu.Instr, bool) {
	e := c.begin(core, buf, max)
	cur := &c.cur[core]
	for !e.full() {
		if cur.v >= cur.hi {
			return e.buf, false
		}
		v := cur.v
		e.load(c.comp, int64(v), 1)
		hops := 0
		for c.labels[v] != c.labels[c.labels[v]] && hops < 64 && !e.full() {
			e.load(c.comp, int64(c.labels[v]), 1) // chase the parent label
			c.labels[v] = c.labels[c.labels[v]]
			e.store(c.comp, int64(v), 1)
			hops++
		}
		if c.labels[v] != c.labels[c.labels[v]] {
			continue // budget ran out mid-chase; resume on the next Fill
		}
		cur.v++
	}
	return e.buf, true
}
