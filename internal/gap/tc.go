package gap

import (
	"dramstacks/internal/cpu"
	"dramstacks/internal/graph"
)

// TC is merge-based triangle counting over sorted adjacency lists: for
// every edge (u,v) with u < v, count the intersection of the two
// neighbor lists restricted to ids below u. The access pattern is mostly
// sequential (two streaming merges), which is why the paper reports tc
// favoring the open page policy.
type TC struct {
	kernelBase

	triangles []int64 // per core
	cur       []tcCur
	started   bool
}

type tcCur struct {
	v, hi    int32
	vLoaded  bool
	ei, eEnd int64 // edge cursor over v's neighbors
	// Active intersection state.
	merging  bool
	ai, aEnd int64 // cursor in u=v's list
	bi, bEnd int64 // cursor in w's list
	limit    int32 // intersect ids strictly below this (the smaller endpoint)
}

// NewTC builds the kernel; adjacency lists must be sorted
// (graph.SortNeighbors).
func NewTC(g *graph.Graph, cores int, lay *Layout) *TC {
	return &TC{
		kernelBase: newKernelBase(g, cores, lay, 505),
		triangles:  make([]int64, cores),
		cur:        make([]tcCur, cores),
	}
}

// Name implements Kernel.
func (t *TC) Name() string { return "tc" }

// Triangles returns the total count (each triangle counted once).
func (t *TC) Triangles() int64 {
	var sum int64
	for _, c := range t.triangles {
		sum += c
	}
	return sum
}

// NextPhase implements Kernel: tc is a single parallel phase.
func (t *TC) NextPhase() bool {
	if t.started {
		return false
	}
	t.started = true
	for c := 0; c < t.cores; c++ {
		lo, hi := t.vertexRange(c, t.g.N)
		t.cur[c] = tcCur{v: lo, hi: hi}
	}
	return true
}

// Fill implements Kernel.
func (t *TC) Fill(core int, buf []cpu.Instr, max int) ([]cpu.Instr, bool) {
	e := t.begin(core, buf, max)
	cur := &t.cur[core]
	for !e.full() {
		if cur.merging {
			t.merge(core, e, cur)
			continue
		}
		if !cur.vLoaded {
			// Start a new vertex.
			if cur.v >= cur.hi {
				return e.buf, false
			}
			e.load(t.off, int64(cur.v), 2)
			cur.ei, cur.eEnd = t.g.Offsets[cur.v], t.g.Offsets[cur.v+1]
			cur.vLoaded = true
		}
		if cur.ei >= cur.eEnd {
			cur.v++
			cur.vLoaded = false
			continue
		}
		w := t.g.Neighbors[cur.ei]
		e.load(t.nbr, cur.ei, 1)
		e.branch(0.02)
		cur.ei++
		if w <= cur.v {
			continue // count each edge once: only v < w
		}
		// Intersect N(v) ∩ N(w), ids below v (triangle closed by both).
		cur.merging = true
		cur.ai, cur.aEnd = t.g.Offsets[cur.v], t.g.Offsets[cur.v+1]
		e.load(t.off, int64(w), 2)
		cur.bi, cur.bEnd = t.g.Offsets[w], t.g.Offsets[w+1]
		cur.limit = cur.v
	}
	return e.buf, true
}

// merge advances the sorted-list intersection until the budget or the
// intersection ends.
func (t *TC) merge(core int, e *emitter, cur *tcCur) {
	for cur.ai < cur.aEnd && cur.bi < cur.bEnd && !e.full() {
		a := t.g.Neighbors[cur.ai]
		b := t.g.Neighbors[cur.bi]
		if a >= cur.limit || b >= cur.limit {
			break // sorted lists: nothing below the limit remains
		}
		e.load(t.nbr, cur.ai, 1)
		e.load(t.nbr, cur.bi, 1)
		e.branch(0.03)
		switch {
		case a == b:
			t.triangles[core]++
			cur.ai++
			cur.bi++
		case a < b:
			cur.ai++
		default:
			cur.bi++
		}
	}
	if cur.ai >= cur.aEnd || cur.bi >= cur.bEnd ||
		t.g.Neighbors[cur.ai] >= cur.limit || t.g.Neighbors[cur.bi] >= cur.limit {
		cur.merging = false
	}
}
