package gap

import (
	"math"

	"dramstacks/internal/cpu"
	"dramstacks/internal/graph"
)

// PR is the GAP pull-based PageRank: per iteration, a contribution phase
// (contrib[v] = rank[v]/degree[v], streaming) and a gather phase
// (rank[v] = base + damping × Σ contrib[u] over in-neighbors, streaming
// over CSR with irregular contrib reads), until the L1 error drops below
// the tolerance or MaxIters is reached.
type PR struct {
	kernelBase
	rank    Array // 4 B score per vertex
	contrib Array

	ranks   []float64
	contr   []float64
	newRank []float64

	damping   float64
	tolerance float64
	MaxIters  int

	iter    int
	gather  bool // false: contribution phase, true: gather phase
	started bool
	err     []float64 // per-core error accumulators
	cur     []prCur
	done    bool
	iters   int
}

type prCur struct {
	v, hi    int32
	ei, eEnd int64
	sum      float64
	active   bool
}

// NewPR builds the kernel.
func NewPR(g *graph.Graph, cores int, lay *Layout) *PR {
	p := &PR{
		kernelBase: newKernelBase(g, cores, lay, 202),
		rank:       lay.Array(int64(g.N), 4),
		contrib:    lay.Array(int64(g.N), 4),
		ranks:      make([]float64, g.N),
		contr:      make([]float64, g.N),
		newRank:    make([]float64, g.N),
		damping:    0.85,
		tolerance:  1e-4,
		MaxIters:   10,
		err:        make([]float64, cores),
		cur:        make([]prCur, cores),
	}
	for i := range p.ranks {
		p.ranks[i] = 1 / float64(g.N)
	}
	return p
}

// Name implements Kernel.
func (p *PR) Name() string { return "pr" }

// Rank returns vertex v's final score (for correctness tests).
func (p *PR) Rank(v int32) float64 { return p.ranks[v] }

// Iterations returns how many full iterations ran.
func (p *PR) Iterations() int { return p.iters }

// NextPhase implements Kernel: phases alternate contribution and gather.
func (p *PR) NextPhase() bool {
	if p.done {
		return false
	}
	if !p.started {
		p.started = true
		p.gather = false
	} else if !p.gather {
		p.gather = true
	} else {
		// A gather phase just finished: evaluate convergence.
		var errSum float64
		for c := range p.err {
			errSum += p.err[c]
			p.err[c] = 0
		}
		p.ranks, p.newRank = p.newRank, p.ranks
		p.iters++
		p.iter++
		if errSum < p.tolerance || p.iter >= p.MaxIters {
			p.done = true
			return false
		}
		p.gather = false
	}
	for c := 0; c < p.cores; c++ {
		lo, hi := p.vertexRange(c, p.g.N)
		p.cur[c] = prCur{v: lo, hi: hi}
	}
	return true
}

// Fill implements Kernel.
func (p *PR) Fill(core int, buf []cpu.Instr, max int) ([]cpu.Instr, bool) {
	if p.gather {
		return p.fillGather(core, buf, max)
	}
	return p.fillContrib(core, buf, max)
}

// fillContrib streams contrib[v] = rank[v] / degree[v].
func (p *PR) fillContrib(core int, buf []cpu.Instr, max int) ([]cpu.Instr, bool) {
	e := p.begin(core, buf, max)
	cur := &p.cur[core]
	for !e.full() {
		if cur.v >= cur.hi {
			return e.buf, false
		}
		v := cur.v
		cur.v++
		e.load(p.rank, int64(v), 1)
		e.load(p.off, int64(v), 1)
		deg := p.g.Degree(v)
		if deg > 0 {
			p.contr[v] = p.ranks[v] / float64(deg)
		} else {
			p.contr[v] = 0
		}
		e.store(p.contrib, int64(v), 3)
	}
	return e.buf, true
}

// fillGather pulls neighbor contributions and writes the new rank.
func (p *PR) fillGather(core int, buf []cpu.Instr, max int) ([]cpu.Instr, bool) {
	e := p.begin(core, buf, max)
	cur := &p.cur[core]
	base := (1 - p.damping) / float64(p.g.N)
	for !e.full() {
		if !cur.active {
			if cur.v >= cur.hi {
				return e.buf, false
			}
			e.load(p.off, int64(cur.v), 2)
			cur.ei, cur.eEnd = p.g.Offsets[cur.v], p.g.Offsets[cur.v+1]
			cur.sum = 0
			cur.active = true
		}
		for cur.ei < cur.eEnd && !e.full() {
			u := p.g.Neighbors[cur.ei]
			e.load(p.nbr, cur.ei, 1)
			e.load(p.contrib, int64(u), 2)
			cur.sum += p.contr[u]
			cur.ei++
		}
		if cur.ei >= cur.eEnd {
			v := cur.v
			nr := base + p.damping*cur.sum
			p.newRank[v] = nr
			p.err[core] += math.Abs(nr - p.ranks[v])
			e.store(p.rank, int64(v), 4)
			cur.active = false
			cur.v++
		}
	}
	return e.buf, true
}
