package gap

import (
	"math/rand"

	"dramstacks/internal/cpu"
	"dramstacks/internal/graph"
)

// Array is a simulated in-memory array: a base address and element size.
// Kernels compute the addresses of their real data-structure accesses
// with it.
type Array struct {
	Base uint64
	Elem uint64
}

// Addr returns the address of element i.
func (a Array) Addr(i int64) uint64 { return a.Base + uint64(i)*a.Elem }

// Layout places arrays in the simulated physical address space,
// page-aligned and non-overlapping.
type Layout struct{ next uint64 }

// NewLayout starts allocating at base.
func NewLayout(base uint64) *Layout { return &Layout{next: base} }

// Array reserves space for n elements of elem bytes.
func (l *Layout) Array(n int64, elem int) Array {
	a := Array{Base: l.next, Elem: uint64(elem)}
	size := (uint64(n)*uint64(elem) + 4095) &^ 4095
	l.next += size + 4096 // guard page between arrays
	return a
}

// emitter collects instruction items during a Fill call, respecting the
// budget. Kernels call its helpers for every data access the real
// algorithm performs.
type emitter struct {
	buf []cpu.Instr
	max int
	rng *rand.Rand
}

// full reports whether the budget is exhausted.
func (e *emitter) full() bool { return len(e.buf) >= e.max }

// load emits a load of a[i] preceded by work plain uops.
func (e *emitter) load(a Array, i int64, work int) {
	e.buf = append(e.buf, cpu.Instr{Work: work, Kind: cpu.KindLoad, Addr: a.Addr(i)})
}

// store emits a store to a[i] preceded by work plain uops.
func (e *emitter) store(a Array, i int64, work int) {
	e.buf = append(e.buf, cpu.Instr{Work: work, Kind: cpu.KindStore, Addr: a.Addr(i)})
}

// branch emits a conditional branch; taken-ness that the core's
// predictor would miss is modeled by the probability p.
func (e *emitter) branch(p float64) {
	e.buf = append(e.buf, cpu.Instr{Kind: cpu.KindBranch, Mispredict: e.rng.Float64() < p})
}

// work emits n plain uops.
func (e *emitter) work(n int) {
	e.buf = append(e.buf, cpu.Instr{Work: n})
}

// kernelBase carries what every kernel shares: the graph, its simulated
// arrays and the vertex partitioning.
type kernelBase struct {
	g     *graph.Graph
	cores int
	off   Array // CSR offsets, 8 B elements
	nbr   Array // CSR neighbors, 4 B elements
	wgt   Array // edge weights, 4 B (only if g.Weights != nil)
	em    []emitter
}

func newKernelBase(g *graph.Graph, cores int, lay *Layout, seed int64) kernelBase {
	b := kernelBase{
		g:     g,
		cores: cores,
		off:   lay.Array(int64(g.N)+1, 8),
		nbr:   lay.Array(g.Edges(), 4),
	}
	if g.Weights != nil {
		b.wgt = lay.Array(g.Edges(), 4)
	}
	b.em = make([]emitter, cores)
	for i := range b.em {
		b.em[i] = emitter{rng: rand.New(rand.NewSource(seed + int64(i)))}
	}
	return b
}

// vertexRange splits [0,n) contiguously over cores.
func (b *kernelBase) vertexRange(core, n int) (lo, hi int32) {
	lo = int32(core * n / b.cores)
	hi = int32((core + 1) * n / b.cores)
	return
}

// sliceRange splits [0,n) of a work list contiguously over cores.
func sliceRange(core, cores, n int) (lo, hi int) {
	return core * n / cores, (core + 1) * n / cores
}

// begin prepares core's emitter for a Fill call and returns it.
func (b *kernelBase) begin(core int, buf []cpu.Instr, max int) *emitter {
	e := &b.em[core]
	e.buf = buf
	e.max = max
	return e
}
