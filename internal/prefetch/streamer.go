// Package prefetch implements an L2 stream prefetcher in the style of the
// Skylake L2 streamer: it detects ascending or descending sequences of
// cache-line accesses and runs ahead of them by a configurable depth.
// The prefetcher is what lets a single core's sequential stream approach
// the bandwidth the paper reports (§VII-A: "caches and prefetchers are
// very effective in hiding the memory latency"), while random patterns
// get no benefit.
package prefetch

// Config parameterizes a Streamer.
type Config struct {
	// Streams is the number of independent streams tracked (table size).
	Streams int
	// Depth is how many lines ahead of the stream head to prefetch.
	Depth int
	// Degree caps how many prefetches one observation may issue.
	Degree int
}

// DefaultConfig returns a Skylake-like streamer configuration.
func DefaultConfig() Config {
	return Config{Streams: 16, Depth: 20, Degree: 2}
}

// Enabled reports whether the configuration prefetches at all.
func (c Config) Enabled() bool {
	return c.Streams > 0 && c.Depth > 0 && c.Degree > 0
}

type stream struct {
	lastLine uint64
	dir      int    // +1, -1 or 0 (direction not yet known)
	conf     int    // consecutive matches
	ahead    uint64 // furthest line already requested
	lastUse  int64
	valid    bool
}

// Streamer detects line-granular streams for one core.
type Streamer struct {
	cfg   Config
	slots []stream
	clock int64

	observed int64
	issued   int64
}

// NewStreamer returns a streamer with the given configuration.
func NewStreamer(cfg Config) *Streamer {
	return &Streamer{cfg: cfg, slots: make([]stream, max(cfg.Streams, 1))}
}

// Observed returns how many demand accesses the streamer has seen.
func (s *Streamer) Observed() int64 { return s.observed }

// Issued returns how many prefetch candidates the streamer has produced.
func (s *Streamer) Issued() int64 { return s.issued }

// Observe trains the streamer on a demand access to the given cache line
// (an address divided by the line size) and returns the lines to
// prefetch, nearest first. The returned slice is valid until the next
// call.
func (s *Streamer) Observe(line uint64) []uint64 {
	if !s.cfg.Enabled() {
		return nil
	}
	s.clock++
	s.observed++

	// Continue an established or tentative stream.
	for i := range s.slots {
		sl := &s.slots[i]
		if !sl.valid {
			continue
		}
		switch {
		case sl.dir != 0 && line == next(sl.lastLine, sl.dir):
			sl.lastLine = line
			sl.conf++
			sl.lastUse = s.clock
			return s.run(sl)
		case sl.dir != 0 && line == sl.lastLine:
			sl.lastUse = s.clock // repeated access: keep the stream warm
			return nil
		case sl.dir == 0 && line == sl.lastLine+1:
			sl.dir = 1
			sl.lastLine = line
			sl.conf = 1
			sl.ahead = line
			sl.lastUse = s.clock
			return s.run(sl)
		case sl.dir == 0 && line == sl.lastLine-1:
			sl.dir = -1
			sl.lastLine = line
			sl.conf = 1
			sl.ahead = line
			sl.lastUse = s.clock
			return s.run(sl)
		}
	}

	// Allocate a new tentative stream in the LRU slot.
	victim := 0
	for i := range s.slots {
		if !s.slots[i].valid {
			victim = i
			break
		}
		if s.slots[i].lastUse < s.slots[victim].lastUse {
			victim = i
		}
	}
	s.slots[victim] = stream{lastLine: line, valid: true, lastUse: s.clock}
	return nil
}

// run emits up to Degree prefetches extending the stream to Depth lines
// ahead of its head.
func (s *Streamer) run(sl *stream) []uint64 {
	target := next(sl.lastLine, sl.dir*s.cfg.Depth)
	var out []uint64
	cur := sl.ahead
	// Never fall behind the head.
	if (sl.dir > 0 && cur < sl.lastLine) || (sl.dir < 0 && cur > sl.lastLine) {
		cur = sl.lastLine
	}
	for len(out) < s.cfg.Degree && cur != target {
		cur = next(cur, sl.dir)
		out = append(out, cur)
		if cur == 0 { // wrapped below zero on a descending stream
			break
		}
	}
	if len(out) > 0 {
		sl.ahead = out[len(out)-1]
		s.issued += int64(len(out))
	}
	return out
}

func next(line uint64, delta int) uint64 {
	return uint64(int64(line) + int64(delta))
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
