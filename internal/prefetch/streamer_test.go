package prefetch

import "testing"

func TestAscendingStreamDetected(t *testing.T) {
	s := NewStreamer(Config{Streams: 4, Depth: 8, Degree: 4})
	if got := s.Observe(100); got != nil {
		t.Fatalf("first access prefetched %v", got)
	}
	got := s.Observe(101)
	if len(got) != 4 {
		t.Fatalf("second access prefetched %v, want 4 lines", got)
	}
	for i, l := range got {
		if want := uint64(102 + i); l != want {
			t.Errorf("prefetch %d = %d, want %d", i, l, want)
		}
	}
	// The next access continues from where the stream left off.
	got = s.Observe(102)
	if len(got) != 4 || got[0] != 106 {
		t.Errorf("third access prefetched %v, want 106..109", got)
	}
}

func TestDescendingStreamDetected(t *testing.T) {
	s := NewStreamer(Config{Streams: 4, Depth: 4, Degree: 8})
	s.Observe(200)
	got := s.Observe(199)
	if len(got) != 4 || got[0] != 198 || got[3] != 195 {
		t.Errorf("descending prefetches = %v, want 198..195", got)
	}
}

func TestDepthBoundsRunAhead(t *testing.T) {
	s := NewStreamer(Config{Streams: 1, Depth: 4, Degree: 16})
	s.Observe(10)
	first := s.Observe(11) // may run to 15 (depth 4 ahead of 11)
	if len(first) != 4 || first[len(first)-1] != 15 {
		t.Fatalf("first run = %v, want up to line 15", first)
	}
	// Re-observing the head line issues nothing new.
	if got := s.Observe(11); got != nil {
		t.Errorf("repeat access prefetched %v", got)
	}
	// Advancing one line extends the window by exactly one.
	got := s.Observe(12)
	if len(got) != 1 || got[0] != 16 {
		t.Errorf("advance prefetched %v, want [16]", got)
	}
}

func TestRandomAccessesNoPrefetch(t *testing.T) {
	s := NewStreamer(DefaultConfig())
	addrs := []uint64{500, 17, 93410, 2, 777, 12345, 42, 900001}
	for _, a := range addrs {
		if got := s.Observe(a); got != nil {
			t.Fatalf("random access %d prefetched %v", a, got)
		}
	}
	if s.Issued() != 0 {
		t.Errorf("issued = %d, want 0", s.Issued())
	}
}

func TestMultipleConcurrentStreams(t *testing.T) {
	s := NewStreamer(Config{Streams: 4, Depth: 4, Degree: 4})
	// Interleave two ascending streams.
	s.Observe(1000)
	s.Observe(2000)
	a := s.Observe(1001)
	b := s.Observe(2001)
	if len(a) == 0 || len(b) == 0 {
		t.Fatalf("streams not both detected: %v %v", a, b)
	}
	if a[0] != 1002 || b[0] != 2002 {
		t.Errorf("stream heads wrong: %v %v", a, b)
	}
}

func TestLRUEviction(t *testing.T) {
	s := NewStreamer(Config{Streams: 2, Depth: 4, Degree: 4})
	s.Observe(100) // slot A
	s.Observe(200) // slot B
	s.Observe(300) // evicts A (LRU)
	// Stream at 100 forgotten: 101 allocates anew, no prefetch.
	if got := s.Observe(101); got != nil {
		t.Errorf("evicted stream still live: %v", got)
	}
	// Stream at 300 still trainable.
	if got := s.Observe(301); len(got) == 0 {
		t.Error("recent stream was evicted")
	}
}

func TestDisabledConfig(t *testing.T) {
	s := NewStreamer(Config{})
	s.Observe(1)
	if got := s.Observe(2); got != nil {
		t.Errorf("disabled streamer prefetched %v", got)
	}
}
