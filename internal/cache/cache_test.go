package cache

import (
	"testing"
	"testing/quick"
)

func smallCfg() Config {
	return Config{Name: "T", SizeBytes: 1024, Ways: 2, LineBytes: 64, Latency: 3}
}

func TestConfigValidate(t *testing.T) {
	if err := smallCfg().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.SizeBytes = 0 },
		func(c *Config) { c.Ways = 0 },
		func(c *Config) { c.LineBytes = 0 },
		func(c *Config) { c.Latency = 0 },
		func(c *Config) { c.SizeBytes = 1000 },       // not divisible
		func(c *Config) { c.SizeBytes = 64 * 2 * 3 }, // 3 sets
	}
	for i, mutate := range bad {
		cfg := smallCfg()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, cfg)
		}
	}
	if got := smallCfg().Sets(); got != 8 {
		t.Errorf("sets = %d, want 8", got)
	}
}

func TestLookupInsertBasics(t *testing.T) {
	c := New(smallCfg())
	if c.Lookup(0x1000, true, false) {
		t.Fatal("hit in empty cache")
	}
	c.Insert(0x1000, false, false)
	if !c.Lookup(0x1000, true, false) {
		t.Fatal("miss after insert")
	}
	// Same line, different byte offset.
	if !c.Lookup(0x1004, true, false) {
		t.Fatal("miss within the inserted line")
	}
	s := c.Stats()
	if s.Accesses != 3 || s.Hits != 2 || s.Misses != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	c := New(smallCfg()) // 8 sets, 2 ways; same set every 8*64=512 bytes
	a, b, d := uint64(0), uint64(512), uint64(1024)
	c.Insert(a, false, false)
	c.Insert(b, false, false)
	c.Lookup(a, true, false) // a is now MRU
	ev, had := c.Insert(d, false, false)
	if !had || ev.Addr != b {
		t.Errorf("evicted %+v (had=%v), want line %#x", ev, had, b)
	}
	if !c.Contains(a) || !c.Contains(d) || c.Contains(b) {
		t.Error("wrong lines resident after eviction")
	}
}

func TestDirtyEvictionReported(t *testing.T) {
	c := New(smallCfg())
	c.Insert(0, true, false)
	c.Insert(512, false, false)
	ev, had := c.Insert(1024, false, false)
	if !had || !ev.Dirty || ev.Addr != 0 {
		t.Errorf("dirty eviction not reported: %+v had=%v", ev, had)
	}
	if c.Stats().DirtyEvictions != 1 {
		t.Errorf("dirty evictions = %d", c.Stats().DirtyEvictions)
	}
}

func TestWriteMarksDirty(t *testing.T) {
	c := New(smallCfg())
	c.Insert(0, false, false)
	c.Lookup(0, true, true) // write hit
	c.Insert(512, false, false)
	ev, _ := c.Insert(1024, false, false)
	if !ev.Dirty {
		t.Error("written line evicted clean")
	}
}

func TestPrefetchedFlagLifecycle(t *testing.T) {
	c := New(smallCfg())
	c.Insert(0, false, true)
	if c.Stats().PrefetchFills != 1 {
		t.Fatalf("prefetch fills = %d", c.Stats().PrefetchFills)
	}
	c.Lookup(0, true, false)
	if c.Stats().PrefetchHits != 1 {
		t.Errorf("prefetch hits = %d", c.Stats().PrefetchHits)
	}
	// Second demand hit does not double count.
	c.Lookup(0, true, false)
	if c.Stats().PrefetchHits != 1 {
		t.Errorf("prefetch hits double counted: %d", c.Stats().PrefetchHits)
	}
}

func TestInvalidate(t *testing.T) {
	c := New(smallCfg())
	c.Insert(0x40, true, false)
	present, dirty := c.Invalidate(0x40)
	if !present || !dirty {
		t.Errorf("invalidate = %v,%v want true,true", present, dirty)
	}
	if c.Contains(0x40) {
		t.Error("line still present after invalidate")
	}
	if present, _ := c.Invalidate(0x40); present {
		t.Error("double invalidate reported present")
	}
}

func TestReinsertMergesDirty(t *testing.T) {
	c := New(smallCfg())
	c.Insert(0, true, false)
	c.Insert(0, false, false) // reinsert clean must not clear dirty
	c.Insert(512, false, false)
	ev, _ := c.Insert(1024, false, false)
	if !ev.Dirty {
		t.Error("dirty bit lost on reinsert")
	}
}

// TestCapacityInvariant: a cache never holds more distinct lines than its
// capacity, and every inserted line is findable until evicted.
func TestCapacityInvariant(t *testing.T) {
	f := func(addrs []uint64) bool {
		c := New(smallCfg())
		resident := map[uint64]bool{}
		for _, a := range addrs {
			a &= (1 << 20) - 1
			line := a &^ 63
			ev, had := c.Insert(line, false, false)
			resident[line] = true
			if had {
				if !resident[ev.Addr] {
					return false // evicted something never inserted
				}
				delete(resident, ev.Addr)
			}
			if len(resident) > 16 { // 8 sets × 2 ways
				return false
			}
			if !c.Contains(line) {
				return false
			}
		}
		//dramvet:allow detrange(pure membership checks; order cannot matter)
		for line := range resident {
			if !c.Contains(line) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTouch(t *testing.T) {
	c := New(smallCfg())
	if c.Touch(0x100, false) {
		t.Fatal("touch hit in empty cache")
	}
	c.Insert(0x100, false, false)
	before := c.Stats()
	if !c.Touch(0x100, true) {
		t.Fatal("touch missed resident line")
	}
	if c.Stats() != before {
		t.Error("touch changed statistics")
	}
	// Touch marked the line dirty: when it is eventually evicted, the
	// eviction carries the dirty bit.
	c.Insert(0x100+512, false, false)
	ev, had := c.Insert(0x100+1024, false, false)
	if !had || ev.Addr != 0x100 || !ev.Dirty {
		t.Fatalf("eviction = %+v (had=%v), want dirty 0x100", ev, had)
	}
	// Recency: touch beats an older untouched line.
	d := New(smallCfg())
	d.Insert(0, false, false)
	d.Insert(512, false, false)
	d.Touch(0, false) // 0 is now more recent than 512
	ev, _ = d.Insert(1024, false, false)
	if ev.Addr != 512 {
		t.Errorf("evicted %#x, want the untouched 512", ev.Addr)
	}
}
