package cache

import (
	"fmt"

	"dramstacks/internal/prefetch"
)

// Waiter receives the completion of an in-flight memory operation.
// MemDone is invoked with the completion CPU cycle, the fraction of the
// request's DRAM latency that was queueing-related (queue + writeburst
// + refresh), used for the cycle stack's dram-queue split, and the
// fraction spent held by QoS bandwidth regulation (dram-regulated;
// exactly 0 without a QoS policy).
//
// Completions are delivered through this interface rather than a
// callback closure so the hot path allocates nothing per access: a
// pooled ticket or MSHR entry passed as a Waiter is a plain interface
// conversion of an existing pointer.
type Waiter interface {
	MemDone(doneCPU int64, queueFrac, regFrac float64)
}

// MemPort is the hierarchy's view of the memory controller. Times are in
// CPU cycles; the adapter owns the CPU-to-memory clock conversion.
// src is the requesting core's index — the multi-tenant source identity
// QoS budgets, priority tiers and per-source stacks key on. Writebacks
// carry the core whose eviction produced them (an approximation of the
// line's original writer that needs no per-line owner tracking).
type MemPort interface {
	// Read requests a line fill; w.MemDone fires when the data has
	// returned. Read reports false when the controller cannot accept
	// the request this cycle (back pressure: retry later).
	Read(now int64, addr uint64, src int, w Waiter) bool
	// Write hands a dirty line back to memory; false means retry later.
	Write(now int64, addr uint64, src int) bool
}

// Status classifies the outcome of a hierarchy access.
type Status uint8

const (
	// Hit means the access completes after Outcome.Latency CPU cycles.
	Hit Status = iota
	// Pending means the line is being fetched from DRAM; the callback
	// fires on completion.
	Pending
	// Retry means a structural resource (MSHR or controller queue) was
	// exhausted; the caller must retry next cycle.
	Retry
)

// Outcome is the result of a hierarchy access.
type Outcome struct {
	Status  Status
	Latency int // valid for Hit: CPU cycles until data
	Level   int // 1, 2, 3 for hits; 0 otherwise
}

// HierConfig configures a Hierarchy.
type HierConfig struct {
	Cores int
	L1    Config
	L2    Config
	LLC   Config
	// MSHRs bounds concurrent outstanding line fills (shared).
	MSHRs int
	// PerCoreMSHRs bounds outstanding fills per core (the line-fill
	// buffer limit that caps a single core's memory-level parallelism).
	PerCoreMSHRs int
	// Prefetch configures the per-core L2 stream prefetcher.
	Prefetch prefetch.Config
}

// DefaultHierConfig returns the paper's cache setup (§VI) for the given
// core count: 32 KB L1, 1 MB L2, 11 MB shared LLC regardless of cores.
func DefaultHierConfig(cores int) HierConfig {
	return HierConfig{
		Cores:        cores,
		L1:           Config{Name: "L1", SizeBytes: 32 << 10, Ways: 8, LineBytes: 64, Latency: 4},
		L2:           Config{Name: "L2", SizeBytes: 1 << 20, Ways: 16, LineBytes: 64, Latency: 14},
		LLC:          Config{Name: "LLC", SizeBytes: 11 << 20, Ways: 11, LineBytes: 64, Latency: 44},
		MSHRs:        64,
		PerCoreMSHRs: 12,
		Prefetch:     prefetch.DefaultConfig(),
	}
}

// Validate reports a descriptive error for unusable configurations.
func (c HierConfig) Validate() error {
	if c.Cores <= 0 {
		return fmt.Errorf("cache: cores must be positive, got %d", c.Cores)
	}
	for _, lv := range []Config{c.L1, c.L2, c.LLC} {
		if err := lv.Validate(); err != nil {
			return err
		}
	}
	if c.L1.LineBytes != c.L2.LineBytes || c.L2.LineBytes != c.LLC.LineBytes {
		return fmt.Errorf("cache: line sizes differ across levels")
	}
	if c.MSHRs <= 0 || c.PerCoreMSHRs <= 0 {
		return fmt.Errorf("cache: MSHR counts must be positive, got %d/%d", c.MSHRs, c.PerCoreMSHRs)
	}
	return nil
}

// mshrEntry tracks one in-flight line fill. The entry itself is the
// Waiter handed to the memory port, so no per-miss closure is needed;
// entries are pooled by the owning Hierarchy and recycled on fill.
type mshrEntry struct {
	h        *Hierarchy
	addr     uint64
	core     int
	prefetch bool
	dirty    bool // a store is waiting: mark the line dirty on fill
	waiters  []Waiter
}

// MemDone implements Waiter: the fill for this entry's line completed.
func (e *mshrEntry) MemDone(doneCPU int64, queueFrac, regFrac float64) {
	e.h.fill(doneCPU, e, queueFrac, regFrac)
}

// HierStats aggregates hierarchy-wide counters.
type HierStats struct {
	DemandMissesToMem int64
	PrefetchesToMem   int64
	WritebacksToMem   int64
	MSHRMerges        int64
	Retries           int64
	PrefetchDropped   int64
}

// Hierarchy is the full three-level cache system for all cores.
type Hierarchy struct {
	cfg HierConfig
	l1  []*Cache
	l2  []*Cache
	llc *Cache
	mem MemPort

	pf []*prefetch.Streamer

	mshr        map[uint64]*mshrEntry
	mshrFree    []*mshrEntry // recycled entries; waiters capacity reused
	perCoreUsed []int

	pendingWB []pendingWB // dirty lines waiting for controller queue space

	hints []lineHint // per-core last-line/way hint (see lineHint)

	lineMask uint64
	stats    HierStats
}

// lineHint memoizes the outcome of a core's most recent Access for the
// line it touched. Two shapes matter on the hot path:
//
//   - way >= 0: the line hit L1 at that way. The next access to the
//     same line probes it first and falls back to the full scan when
//     the tag no longer matches, so the hint is purely advisory.
//   - miss: the line missed all three levels. While no level's content
//     has changed since (the epochs below match), the three probes
//     would miss again, so a retried access advances the per-level
//     statistics arithmetically without scanning a single tag way —
//     byte-identical to re-probing. This is what makes the per-cycle
//     retry pattern (a core re-issuing the same blocked access every
//     cycle under MSHR or queue back pressure) cheap.
//
// The zero value is inert-but-safe: line 0 / way 0 is validated by the
// tag check like any other hint, and miss is false.
type lineHint struct {
	line       uint64
	way        int32
	miss       bool
	e1, e2, e3 int64 // l1[core], l2[core], llc epochs at miss time
}

// NewHierarchy builds the hierarchy over the given memory port.
func NewHierarchy(cfg HierConfig, mem MemPort) (*Hierarchy, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	h := &Hierarchy{
		cfg:         cfg,
		llc:         New(cfg.LLC),
		mem:         mem,
		mshr:        make(map[uint64]*mshrEntry),
		perCoreUsed: make([]int, cfg.Cores),
		hints:       make([]lineHint, cfg.Cores),
		lineMask:    ^uint64(cfg.L1.LineBytes - 1),
	}
	for i := 0; i < cfg.Cores; i++ {
		h.l1 = append(h.l1, New(cfg.L1))
		h.l2 = append(h.l2, New(cfg.L2))
		h.pf = append(h.pf, prefetch.NewStreamer(cfg.Prefetch))
	}
	return h, nil
}

// MustNewHierarchy is NewHierarchy for known-good configurations.
func MustNewHierarchy(cfg HierConfig, mem MemPort) *Hierarchy {
	h, err := NewHierarchy(cfg, mem)
	if err != nil {
		panic(err)
	}
	return h
}

// Stats returns hierarchy-wide counters.
func (h *Hierarchy) Stats() HierStats { return h.stats }

// L1Stats, L2Stats return the private level counters of one core;
// LLCStats the shared level's.
func (h *Hierarchy) L1Stats(core int) LevelStats { return h.l1[core].stats }

// L2Stats returns core's L2 counters.
func (h *Hierarchy) L2Stats(core int) LevelStats { return h.l2[core].stats }

// LLCStats returns the shared LLC counters.
func (h *Hierarchy) LLCStats() LevelStats { return h.llc.stats }

// OutstandingMisses returns the number of in-flight line fills.
func (h *Hierarchy) OutstandingMisses() int { return len(h.mshr) }

// Pending reports whether fills or writebacks are still in flight.
func (h *Hierarchy) Pending() bool { return len(h.mshr) > 0 || len(h.pendingWB) > 0 }

// pendingWB is one dirty line waiting for controller queue space, with
// the core whose eviction produced it (the writeback's QoS source).
type pendingWB struct {
	addr uint64
	src  int
}

// Tick retries writebacks that previously hit controller back pressure.
// Call once per CPU cycle (cheap when the backlog is empty).
func (h *Hierarchy) Tick(now int64) {
	for len(h.pendingWB) > 0 {
		if !h.mem.Write(now, h.pendingWB[0].addr, h.pendingWB[0].src) {
			return
		}
		h.stats.WritebacksToMem++
		h.pendingWB = h.pendingWB[1:]
	}
}

// Warm performs a functional (timing-free) access, used to pre-warm the
// caches into their steady state before measurement begins: lines are
// installed and recency/dirtiness tracked, but no statistics are counted,
// no prefetches are trained and dirty LLC evictions are dropped rather
// than written to memory.
//
// Each level is driven through warmAccess, which fuses the older
// Touch-miss + Insert pair into one set scan. The per-level operation
// sequences are exactly the composed walk's — probe effects on a hit,
// install effects on a miss, eviction cascade afterwards — only the
// redundant second scan per level is gone; levels are independent
// state, so running L1's install before L2's (rather than after, as
// the pair-wise code did) reorders nothing observable. TestWarm-
// MatchesReference pins the equivalence.
func (h *Hierarchy) Warm(core int, addr uint64, write bool) {
	line := addr & h.lineMask
	l1, l2 := h.l1[core], h.l2[core]
	ev1, hadEv1, hit := l1.warmAccess(line, write)
	if hit {
		return
	}
	ev2, hadEv2, hit2 := l2.warmAccess(line, false)
	if !hit2 {
		h.llc.warmAccess(line, false) // LLC eviction dropped: warmup
	}
	if hadEv2 && ev2.Dirty {
		h.llc.warmAccess(ev2.Addr, true)
	}
	if hadEv1 && ev1.Dirty {
		if evB, hadB, hitB := l2.warmAccess(ev1.Addr, true); !hitB && hadB && evB.Dirty {
			h.llc.warmAccess(evB.Addr, true) // eviction dropped
		}
	}
}

// LLCOp is one shared-LLC operation a Warm call performs: a
// touch-or-install of Line, dirty for eviction writebacks. Recording
// these lets the private-level part of warming run per core while the
// shared level is replayed later in the original global order.
type LLCOp struct {
	Line  uint64
	Dirty bool
}

// WarmPrivate performs exactly the private-level (L1/L2) part of
// Warm(core, addr, write) and appends the LLC operations Warm would
// have performed — in Warm's order — to ops, which it returns. The
// private levels never observe the LLC, so for a fixed per-core access
// stream the calls of different cores are independent: WarmPrivate for
// every core followed by WarmLLC of the recorded operations in Warm's
// global interleaving is state-identical to the same sequence of Warm
// calls. Kept in lockstep with Warm above.
func (h *Hierarchy) WarmPrivate(core int, addr uint64, write bool, ops []LLCOp) []LLCOp {
	line := addr & h.lineMask
	l1, l2 := h.l1[core], h.l2[core]
	ev1, hadEv1, hit := l1.warmAccess(line, write)
	if hit {
		return ops
	}
	ev2, hadEv2, hit2 := l2.warmAccess(line, false)
	if !hit2 {
		ops = append(ops, LLCOp{Line: line})
	}
	if hadEv2 && ev2.Dirty {
		ops = append(ops, LLCOp{Line: ev2.Addr, Dirty: true})
	}
	if hadEv1 && ev1.Dirty {
		if evB, hadB, hitB := l2.warmAccess(ev1.Addr, true); !hitB && hadB && evB.Dirty {
			ops = append(ops, LLCOp{Line: evB.Addr, Dirty: true})
		}
	}
	return ops
}

// WarmLLC replays one recorded LLC operation.
func (h *Hierarchy) WarmLLC(op LLCOp) {
	h.llc.warmAccess(op.Line, op.Dirty)
}

// Access performs a demand load (write=false) or a store's
// read-for-ownership (write=true) for core at CPU cycle now. For Pending
// outcomes w.MemDone fires when the fill completes; w must be non-nil
// for loads. Stores may pass nil.
//
// The L1→L2→LLC walk is flattened into this one frame: the probes are
// hand-inlined copies of Cache.Lookup sharing a single tag computation
// (legal because Validate requires one line size across levels), and a
// per-core lineHint short-circuits the two hot shapes — a repeat L1 hit
// and a retried full miss. Every statistic Lookup would have counted is
// counted here, per attempt, in the same order; TestAccessMatchesReference
// pins the equivalence against the composed per-level walk.
func (h *Hierarchy) Access(now int64, core int, addr uint64, write bool, w Waiter) Outcome {
	line := addr & h.lineMask
	ht := &h.hints[core]
	l1 := h.l1[core]
	l2 := h.l2[core]
	llc := h.llc

	if ht.miss && ht.line == line &&
		ht.e1 == l1.epoch && ht.e2 == l2.epoch && ht.e3 == llc.epoch {
		// The previous access to this line missed every level, and no
		// level's content has changed since: all three probes would
		// miss again. Advance their statistics without scanning.
		l1.stats.Accesses++
		l1.stats.Misses++
		l2.stats.Accesses++
		l2.stats.Misses++
		h.train(now, core, line)
		llc.stats.Accesses++
		llc.stats.Misses++
		return h.missToMem(now, core, line, write, w)
	}

	// L1 probe (mirrors Cache.Lookup(line, true, write) — keep in sync).
	l1.stats.Accesses++
	tag := line >> l1.setShift
	enc := tag<<1 | tagValid
	s1 := l1.slots[(tag&l1.setMask)*uint64(l1.cfg.Ways):][:l1.cfg.Ways]
	hitWay := -1
	if ht.line == line && ht.way >= 0 && int(ht.way) < len(s1) {
		// A tag matches at most one way per set (Insert refreshes in
		// place), so trusting the hinted way is exact, not heuristic.
		if s1[ht.way].enc == enc {
			hitWay = int(ht.way)
		}
	}
	if hitWay < 0 {
		for i := range s1 {
			if s1[i].enc == enc {
				hitWay = i
				break
			}
		}
	}
	if hitWay >= 0 {
		l1.clock++
		nm := uint64(l1.clock)<<metaUsedShift | s1[hitWay].meta&(metaDirty|metaPrefetched)
		l1.stats.Hits++
		if nm&metaPrefetched != 0 {
			l1.stats.PrefetchHits++
			nm &^= metaPrefetched
		}
		if write {
			nm |= metaDirty
		}
		s1[hitWay].meta = nm
		*ht = lineHint{line: line, way: int32(hitWay)}
		return Outcome{Status: Hit, Latency: h.cfg.L1.Latency, Level: 1}
	}
	l1.stats.Misses++

	// L2 probe.
	l2.stats.Accesses++
	s2 := l2.slots[(tag&l2.setMask)*uint64(l2.cfg.Ways):][:l2.cfg.Ways]
	for i := range s2 {
		if s2[i].enc == enc {
			l2.clock++
			nm := uint64(l2.clock)<<metaUsedShift | s2[i].meta&(metaDirty|metaPrefetched)
			l2.stats.Hits++
			if nm&metaPrefetched != 0 {
				l2.stats.PrefetchHits++
				nm &^= metaPrefetched
			}
			if write {
				nm |= metaDirty
			}
			s2[i].meta = nm
			h.fillL1(core, line, write)
			h.train(now, core, line)
			return Outcome{Status: Hit, Latency: h.cfg.L2.Latency, Level: 2}
		}
	}
	l2.stats.Misses++
	h.train(now, core, line)

	// LLC probe.
	llc.stats.Accesses++
	s3 := llc.slots[(tag&llc.setMask)*uint64(llc.cfg.Ways):][:llc.cfg.Ways]
	for i := range s3 {
		if s3[i].enc == enc {
			llc.clock++
			nm := uint64(llc.clock)<<metaUsedShift | s3[i].meta&(metaDirty|metaPrefetched)
			llc.stats.Hits++
			if nm&metaPrefetched != 0 {
				llc.stats.PrefetchHits++
				nm &^= metaPrefetched
			}
			if write {
				nm |= metaDirty
			}
			s3[i].meta = nm
			h.fillL2(now, core, line, false)
			h.fillL1(core, line, write)
			return Outcome{Status: Hit, Latency: h.cfg.LLC.Latency, Level: 3}
		}
	}
	llc.stats.Misses++
	*ht = lineHint{line: line, way: -1, miss: true,
		e1: l1.epoch, e2: l2.epoch, e3: llc.epoch}
	return h.missToMem(now, core, line, write, w)
}

// missToMem handles the LLC-miss tail of Access: merge into or allocate
// an MSHR, or report structural back pressure.
func (h *Hierarchy) missToMem(now int64, core int, line uint64, write bool, w Waiter) Outcome {
	if e, ok := h.mshr[line]; ok {
		h.stats.MSHRMerges++
		e.dirty = e.dirty || write
		e.prefetch = false // a demand now waits on this fill
		if w != nil {
			e.waiters = append(e.waiters, w)
		}
		return Outcome{Status: Pending}
	}
	if len(h.mshr) >= h.cfg.MSHRs || h.perCoreUsed[core] >= h.cfg.PerCoreMSHRs {
		h.stats.Retries++
		return Outcome{Status: Retry}
	}
	e := h.newEntry(line, core)
	e.dirty = write
	if w != nil {
		e.waiters = append(e.waiters, w)
	}
	if !h.mem.Read(now, line, core, e) {
		h.putEntry(e)
		h.stats.Retries++
		return Outcome{Status: Retry}
	}
	h.mshr[line] = e
	h.perCoreUsed[core]++
	h.stats.DemandMissesToMem++
	return Outcome{Status: Pending}
}

// newEntry takes an MSHR entry from the pool (or allocates one) and
// resets it for line/core.
func (h *Hierarchy) newEntry(line uint64, core int) *mshrEntry {
	if n := len(h.mshrFree); n > 0 {
		e := h.mshrFree[n-1]
		h.mshrFree = h.mshrFree[:n-1]
		e.addr, e.core, e.prefetch, e.dirty = line, core, false, false
		return e
	}
	return &mshrEntry{h: h, addr: line, core: core}
}

// putEntry returns an entry to the pool, dropping waiter references.
func (h *Hierarchy) putEntry(e *mshrEntry) {
	for i := range e.waiters {
		e.waiters[i] = nil
	}
	e.waiters = e.waiters[:0]
	h.mshrFree = append(h.mshrFree, e)
}

// fill completes an MSHR: install the line, cascade evictions, wake
// waiters, recycle the entry.
func (h *Hierarchy) fill(doneCPU int64, e *mshrEntry, queueFrac, regFrac float64) {
	delete(h.mshr, e.addr)
	h.perCoreUsed[e.core]--

	h.insertLLC(doneCPU, e.core, e.addr, false, e.prefetch)
	h.fillL2(doneCPU, e.core, e.addr, e.prefetch)
	if !e.prefetch {
		h.fillL1(e.core, e.addr, e.dirty)
	}
	for _, w := range e.waiters {
		w.MemDone(doneCPU, queueFrac, regFrac)
	}
	h.putEntry(e)
}

// Prefetch issues a hardware prefetch for core into L2+LLC. It is
// dropped silently on structural hazards.
func (h *Hierarchy) Prefetch(now int64, core int, addr uint64) {
	line := addr & h.lineMask
	if h.l2[core].Contains(line) || h.llc.Contains(line) {
		return
	}
	if _, ok := h.mshr[line]; ok {
		return
	}
	if len(h.mshr) >= h.cfg.MSHRs || h.perCoreUsed[core] >= h.cfg.PerCoreMSHRs {
		h.stats.PrefetchDropped++
		return
	}
	e := h.newEntry(line, core)
	e.prefetch = true
	if !h.mem.Read(now, line, core, e) {
		h.putEntry(e)
		h.stats.PrefetchDropped++
		return
	}
	h.mshr[line] = e
	h.perCoreUsed[core]++
	h.stats.PrefetchesToMem++
}

// train feeds the core's streamer with a demand L2 access and issues the
// prefetches it asks for.
func (h *Hierarchy) train(now int64, core int, line uint64) {
	lineNo := line / uint64(h.cfg.L1.LineBytes)
	for _, ln := range h.pf[core].Observe(lineNo) {
		h.Prefetch(now, core, ln*uint64(h.cfg.L1.LineBytes))
	}
}

func (h *Hierarchy) fillL1(core int, line uint64, dirty bool) {
	if ev, ok := h.l1[core].Insert(line, dirty, false); ok && ev.Dirty {
		// L1 dirty eviction: write back into L2 (full-line write, no
		// fetch needed).
		if !h.l2[core].Lookup(ev.Addr, false, true) {
			h.insertL2(core, ev.Addr, true)
		}
	}
}

func (h *Hierarchy) fillL2(now int64, core int, line uint64, prefetched bool) {
	h.insertL2x(now, core, line, false, prefetched)
}

func (h *Hierarchy) insertL2(core int, line uint64, dirty bool) {
	h.insertL2x(0, core, line, dirty, false)
}

func (h *Hierarchy) insertL2x(now int64, core int, line uint64, dirty, prefetched bool) {
	if ev, ok := h.l2[core].Insert(line, dirty, prefetched); ok && ev.Dirty {
		// L2 dirty eviction: write back into the LLC.
		if !h.llc.Lookup(ev.Addr, false, true) {
			h.insertLLC(now, core, ev.Addr, true, false)
		}
	}
}

func (h *Hierarchy) insertLLC(now int64, core int, line uint64, dirty, prefetched bool) {
	if ev, ok := h.llc.Insert(line, dirty, prefetched); ok && ev.Dirty {
		// LLC dirty eviction: becomes a DRAM write attributed to the
		// evicting core.
		if len(h.pendingWB) == 0 && h.mem.Write(now, ev.Addr, core) {
			h.stats.WritebacksToMem++
			return
		}
		h.pendingWB = append(h.pendingWB, pendingWB{ev.Addr, core})
	}
}
