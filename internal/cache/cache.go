// Package cache implements the processor-side cache hierarchy: set
// associative write-back, write-allocate caches with LRU replacement,
// MSHRs with miss merging, and dirty-eviction writebacks that eventually
// become DRAM writes. It reproduces the paper's §VI setup: 32 KB private
// L1s, 1 MB private L2s with a stream prefetcher, and a shared LLC kept at
// a constant size across core counts.
//
// The caches are timing-functional: they track presence, dirtiness and
// recency, not data. Hits complete after a fixed latency; misses travel
// down the hierarchy and, on an LLC miss, to the memory controller, whose
// per-request latency is dynamic.
package cache

import (
	"fmt"
	"math/bits"
)

// Config describes one cache level.
type Config struct {
	// Name labels the level in statistics ("L1", "L2", "LLC").
	Name string
	// SizeBytes is the total capacity; it must be a power-of-two
	// multiple of Ways × LineBytes.
	SizeBytes int
	// Ways is the set associativity.
	Ways int
	// LineBytes is the cache line size (64 in the paper).
	LineBytes int
	// Latency is the load-to-use latency of a hit at this level, in CPU
	// cycles, measured from the core (absolute, not additive).
	Latency int
}

// Validate reports a descriptive error for unusable configurations.
func (c Config) Validate() error {
	switch {
	case c.SizeBytes <= 0 || c.Ways <= 0 || c.LineBytes <= 0:
		return fmt.Errorf("cache %s: size/ways/line must be positive, got %d/%d/%d",
			c.Name, c.SizeBytes, c.Ways, c.LineBytes)
	case c.Latency < 1:
		return fmt.Errorf("cache %s: latency must be at least 1, got %d", c.Name, c.Latency)
	case c.SizeBytes%(c.Ways*c.LineBytes) != 0:
		return fmt.Errorf("cache %s: size %d not divisible by ways*line %d",
			c.Name, c.SizeBytes, c.Ways*c.LineBytes)
	}
	sets := c.SizeBytes / (c.Ways * c.LineBytes)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache %s: set count %d not a power of two", c.Name, sets)
	}
	return nil
}

// Sets returns the number of sets.
func (c Config) Sets() int { return c.SizeBytes / (c.Ways * c.LineBytes) }

// LevelStats counts one level's activity.
type LevelStats struct {
	Accesses       int64
	Hits           int64
	Misses         int64
	Evictions      int64
	DirtyEvictions int64
	PrefetchFills  int64
	PrefetchHits   int64 // demand hits on prefetched lines
}

// HitRate returns hits/accesses (0 when idle).
func (s LevelStats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// Way state is packed into two 64-bit words per way, kept adjacent in
// one slot array: a whole set is a short contiguous run of memory (two
// hardware cache lines for an 8-way set) instead of a spread of padded
// structs. The layout matters most during functional warming of
// DRAM-sized footprints, where every access lands in a random set and
// the probe + LRU victim scan cost is pure memory traffic.
const (
	// slot.enc holds tag<<1 | tagValid; an invalid way is 0.
	tagValid = 1
	// slot.meta holds used<<metaUsedShift | flags. The LRU clock
	// assigns each valid way a distinct used value, so packed metadata
	// words of valid ways compare exactly like their used fields.
	metaPrefetched = 1 << 0
	metaDirty      = 1 << 1
	metaUsedShift  = 2
)

type slot struct {
	enc  uint64 // tag<<1 | tagValid
	meta uint64 // used<<2 | dirty<<1 | prefetched
}

// Cache is one set-associative cache level.
type Cache struct {
	cfg      Config
	slots    []slot // sets × ways, flattened
	setShift uint
	setMask  uint64
	clock    int64
	stats    LevelStats

	// epoch counts content changes (Insert, Invalidate). A probe
	// outcome memoized at epoch E is still valid while the epoch is E:
	// presence can only change through those two entry points.
	epoch int64
}

// New returns a cache level; it panics on invalid configuration
// (a construction-time programming error).
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	sets := cfg.Sets()
	return &Cache{
		cfg:      cfg,
		slots:    make([]slot, sets*cfg.Ways),
		setShift: uint(bits.TrailingZeros(uint(cfg.LineBytes))),
		setMask:  uint64(sets - 1),
	}
}

// Cfg returns the level's configuration.
func (c *Cache) Cfg() Config { return c.cfg }

// Stats returns the level's counters.
func (c *Cache) Stats() LevelStats { return c.stats }

// set returns addr's set as a slice of the slot array.
func (c *Cache) set(addr uint64) []slot {
	b := ((addr >> c.setShift) & c.setMask) * uint64(c.cfg.Ways)
	return c.slots[b : b+uint64(c.cfg.Ways)]
}

func (c *Cache) tag(addr uint64) uint64 { return addr >> c.setShift }

// Lookup probes the cache for the line containing addr. When demand is
// true the access is counted and LRU state updated; write marks the line
// dirty on a hit.
func (c *Cache) Lookup(addr uint64, demand, write bool) bool {
	if demand {
		c.stats.Accesses++
	}
	set := c.set(addr)
	enc := c.tag(addr)<<1 | tagValid
	for i := range set {
		if set[i].enc == enc {
			m := &set[i].meta
			if demand {
				c.clock++
				nm := uint64(c.clock)<<metaUsedShift | *m&(metaDirty|metaPrefetched)
				if nm&metaPrefetched != 0 {
					c.stats.PrefetchHits++
					nm &^= metaPrefetched
				}
				c.stats.Hits++
				*m = nm
			}
			if write {
				*m |= metaDirty
			}
			return true
		}
	}
	if demand {
		c.stats.Misses++
	}
	return false
}

// Touch probes for the line without touching statistics; on a hit it
// updates recency (and dirtiness for writes) and reports true. Used by
// functional cache warming.
func (c *Cache) Touch(addr uint64, write bool) bool {
	set := c.set(addr)
	enc := c.tag(addr)<<1 | tagValid
	for i := range set {
		if set[i].enc == enc {
			c.clock++
			nm := uint64(c.clock)<<metaUsedShift | set[i].meta&(metaDirty|metaPrefetched)
			if write {
				nm |= metaDirty
			}
			set[i].meta = nm
			return true
		}
	}
	return false
}

// Contains reports presence without disturbing statistics or recency.
func (c *Cache) Contains(addr uint64) bool {
	set := c.set(addr)
	enc := c.tag(addr)<<1 | tagValid
	for i := range set {
		if set[i].enc == enc {
			return true
		}
	}
	return false
}

// Eviction describes a line pushed out by an Insert.
type Eviction struct {
	Addr  uint64
	Dirty bool
}

// Insert places the line containing addr into the cache and returns the
// eviction it caused, if any. If the line is already present it is
// refreshed in place (dirty/prefetched flags are OR-ed/overwritten).
func (c *Cache) Insert(addr uint64, dirty, prefetched bool) (Eviction, bool) {
	set := c.set(addr)
	enc := c.tag(addr)<<1 | tagValid
	c.clock++
	c.epoch++
	for i := range set {
		if set[i].enc == enc {
			m := set[i].meta
			nm := uint64(c.clock) << metaUsedShift
			if dirty || m&metaDirty != 0 {
				nm |= metaDirty
			}
			if prefetched && m&metaPrefetched != 0 {
				nm |= metaPrefetched
			}
			set[i].meta = nm
			return Eviction{}, false
		}
	}
	// Same victim rule as warmAccess: see the invariant note there.
	victim, min := 0, set[0].meta
	for i := 1; i < len(set); i++ {
		if m := set[i].meta; m < min {
			victim, min = i, m
		}
	}
	var ev Eviction
	had := false
	if v := set[victim]; v.enc&tagValid != 0 {
		c.stats.Evictions++
		had = true
		ev = Eviction{Addr: v.enc >> 1 << c.setShift, Dirty: v.meta&metaDirty != 0}
		if v.meta&metaDirty != 0 {
			c.stats.DirtyEvictions++
		}
	}
	nm := uint64(c.clock) << metaUsedShift
	if dirty {
		nm |= metaDirty
	}
	if prefetched {
		nm |= metaPrefetched
		c.stats.PrefetchFills++
	}
	set[victim] = slot{enc: enc, meta: nm}
	return ev, had
}

// warmAccess is the functional-warm fast path: one set scan that either
// refreshes a present line (exactly Touch's hit effects) or installs it
// (exactly Insert's miss effects, eviction statistics included, with
// dirty=write and prefetched=false). It compresses warm's Touch-miss +
// Insert pairs into a single pass; the only internal difference is one
// clock increment where the pair made two, which preserves every
// recency ordering the LRU victim search can observe.
func (c *Cache) warmAccess(addr uint64, write bool) (ev Eviction, evicted, hit bool) {
	set := c.set(addr)
	enc := c.tag(addr)<<1 | tagValid
	for i := range set {
		if set[i].enc == enc {
			c.clock++
			nm := uint64(c.clock)<<metaUsedShift | set[i].meta&(metaDirty|metaPrefetched)
			if write {
				nm |= metaDirty
			}
			set[i].meta = nm
			return Eviction{}, false, true
		}
	}
	// Unconditional min-meta victim scan: an invalid slot's metadata is
	// zero and a valid way's is at least 1<<metaUsedShift (the clock is
	// pre-incremented before every install), so invalid ways sort first
	// without a validity branch. Which of several invalid ways receives
	// the line is unobservable — probes are position-independent and
	// recency lives in the metadata, not the slot index.
	victim, min := 0, set[0].meta
	for i := 1; i < len(set); i++ {
		if m := set[i].meta; m < min {
			victim, min = i, m
		}
	}
	c.clock++
	c.epoch++
	if v := set[victim]; v.enc&tagValid != 0 {
		c.stats.Evictions++
		evicted = true
		ev = Eviction{Addr: v.enc >> 1 << c.setShift, Dirty: v.meta&metaDirty != 0}
		if v.meta&metaDirty != 0 {
			c.stats.DirtyEvictions++
		}
	}
	nm := uint64(c.clock) << metaUsedShift
	if write {
		nm |= metaDirty
	}
	set[victim] = slot{enc: enc, meta: nm}
	return ev, evicted, false
}

// Invalidate removes the line containing addr, reporting whether it was
// present and dirty.
func (c *Cache) Invalidate(addr uint64) (present, dirty bool) {
	set := c.set(addr)
	enc := c.tag(addr)<<1 | tagValid
	c.epoch++
	for i := range set {
		if set[i].enc == enc {
			present, dirty = true, set[i].meta&metaDirty != 0
			// Clearing the metadata keeps the victim-scan invariant: an
			// invalid slot is all zero, a valid way's metadata is >= 1<<2.
			set[i] = slot{}
			return
		}
	}
	return
}
