// Package cache implements the processor-side cache hierarchy: set
// associative write-back, write-allocate caches with LRU replacement,
// MSHRs with miss merging, and dirty-eviction writebacks that eventually
// become DRAM writes. It reproduces the paper's §VI setup: 32 KB private
// L1s, 1 MB private L2s with a stream prefetcher, and a shared LLC kept at
// a constant size across core counts.
//
// The caches are timing-functional: they track presence, dirtiness and
// recency, not data. Hits complete after a fixed latency; misses travel
// down the hierarchy and, on an LLC miss, to the memory controller, whose
// per-request latency is dynamic.
package cache

import (
	"fmt"
	"math/bits"
)

// Config describes one cache level.
type Config struct {
	// Name labels the level in statistics ("L1", "L2", "LLC").
	Name string
	// SizeBytes is the total capacity; it must be a power-of-two
	// multiple of Ways × LineBytes.
	SizeBytes int
	// Ways is the set associativity.
	Ways int
	// LineBytes is the cache line size (64 in the paper).
	LineBytes int
	// Latency is the load-to-use latency of a hit at this level, in CPU
	// cycles, measured from the core (absolute, not additive).
	Latency int
}

// Validate reports a descriptive error for unusable configurations.
func (c Config) Validate() error {
	switch {
	case c.SizeBytes <= 0 || c.Ways <= 0 || c.LineBytes <= 0:
		return fmt.Errorf("cache %s: size/ways/line must be positive, got %d/%d/%d",
			c.Name, c.SizeBytes, c.Ways, c.LineBytes)
	case c.Latency < 1:
		return fmt.Errorf("cache %s: latency must be at least 1, got %d", c.Name, c.Latency)
	case c.SizeBytes%(c.Ways*c.LineBytes) != 0:
		return fmt.Errorf("cache %s: size %d not divisible by ways*line %d",
			c.Name, c.SizeBytes, c.Ways*c.LineBytes)
	}
	sets := c.SizeBytes / (c.Ways * c.LineBytes)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache %s: set count %d not a power of two", c.Name, sets)
	}
	return nil
}

// Sets returns the number of sets.
func (c Config) Sets() int { return c.SizeBytes / (c.Ways * c.LineBytes) }

// LevelStats counts one level's activity.
type LevelStats struct {
	Accesses       int64
	Hits           int64
	Misses         int64
	Evictions      int64
	DirtyEvictions int64
	PrefetchFills  int64
	PrefetchHits   int64 // demand hits on prefetched lines
}

// HitRate returns hits/accesses (0 when idle).
func (s LevelStats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

type way struct {
	tag        uint64
	valid      bool
	dirty      bool
	prefetched bool
	used       int64 // LRU clock
}

// Cache is one set-associative cache level.
type Cache struct {
	cfg      Config
	ways     []way // sets × ways, flattened
	setShift uint
	setMask  uint64
	clock    int64
	stats    LevelStats
}

// New returns a cache level; it panics on invalid configuration
// (a construction-time programming error).
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	sets := cfg.Sets()
	return &Cache{
		cfg:      cfg,
		ways:     make([]way, sets*cfg.Ways),
		setShift: uint(bits.TrailingZeros(uint(cfg.LineBytes))),
		setMask:  uint64(sets - 1),
	}
}

// Cfg returns the level's configuration.
func (c *Cache) Cfg() Config { return c.cfg }

// Stats returns the level's counters.
func (c *Cache) Stats() LevelStats { return c.stats }

func (c *Cache) set(addr uint64) []way {
	s := (addr >> c.setShift) & c.setMask
	return c.ways[s*uint64(c.cfg.Ways) : (s+1)*uint64(c.cfg.Ways)]
}

func (c *Cache) tag(addr uint64) uint64 { return addr >> c.setShift }

// Lookup probes the cache for the line containing addr. When demand is
// true the access is counted and LRU state updated; write marks the line
// dirty on a hit.
func (c *Cache) Lookup(addr uint64, demand, write bool) bool {
	if demand {
		c.stats.Accesses++
	}
	set := c.set(addr)
	tag := c.tag(addr)
	for i := range set {
		w := &set[i]
		if w.valid && w.tag == tag {
			if demand {
				c.clock++
				w.used = c.clock
				c.stats.Hits++
				if w.prefetched {
					c.stats.PrefetchHits++
					w.prefetched = false
				}
			}
			if write {
				w.dirty = true
			}
			return true
		}
	}
	if demand {
		c.stats.Misses++
	}
	return false
}

// Touch probes for the line without touching statistics; on a hit it
// updates recency (and dirtiness for writes) and reports true. Used by
// functional cache warming.
func (c *Cache) Touch(addr uint64, write bool) bool {
	set := c.set(addr)
	tag := c.tag(addr)
	for i := range set {
		w := &set[i]
		if w.valid && w.tag == tag {
			c.clock++
			w.used = c.clock
			if write {
				w.dirty = true
			}
			return true
		}
	}
	return false
}

// Contains reports presence without disturbing statistics or recency.
func (c *Cache) Contains(addr uint64) bool {
	set := c.set(addr)
	tag := c.tag(addr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return true
		}
	}
	return false
}

// Eviction describes a line pushed out by an Insert.
type Eviction struct {
	Addr  uint64
	Dirty bool
}

// Insert places the line containing addr into the cache and returns the
// eviction it caused, if any. If the line is already present it is
// refreshed in place (dirty/prefetched flags are OR-ed/overwritten).
func (c *Cache) Insert(addr uint64, dirty, prefetched bool) (Eviction, bool) {
	set := c.set(addr)
	tag := c.tag(addr)
	c.clock++
	victim := 0
	for i := range set {
		w := &set[i]
		if w.valid && w.tag == tag {
			w.dirty = w.dirty || dirty
			w.prefetched = prefetched && w.prefetched
			w.used = c.clock
			return Eviction{}, false
		}
		if !w.valid {
			victim = i
		} else if set[victim].valid && w.used < set[victim].used {
			victim = i
		}
	}
	w := &set[victim]
	var ev Eviction
	had := false
	if w.valid {
		c.stats.Evictions++
		had = true
		ev = Eviction{Addr: w.tag << c.setShift, Dirty: w.dirty}
		if w.dirty {
			c.stats.DirtyEvictions++
		}
	}
	*w = way{tag: tag, valid: true, dirty: dirty, prefetched: prefetched, used: c.clock}
	if prefetched {
		c.stats.PrefetchFills++
	}
	return ev, had
}

// Invalidate removes the line containing addr, reporting whether it was
// present and dirty.
func (c *Cache) Invalidate(addr uint64) (present, dirty bool) {
	set := c.set(addr)
	tag := c.tag(addr)
	for i := range set {
		w := &set[i]
		if w.valid && w.tag == tag {
			present, dirty = true, w.dirty
			w.valid = false
			return
		}
	}
	return
}
