package cache

import (
	"math/rand"
	"reflect"
	"testing"

	"dramstacks/internal/prefetch"
)

// accessRef is the composed per-level reference walk the flattened
// Access replaces: three Cache.Lookup calls plus the shared missToMem
// tail. The flattened path must match it attempt-for-attempt in
// outcomes, per-level statistics and memory-port traffic.
func accessRef(h *Hierarchy, now int64, core int, addr uint64, write bool, w Waiter) Outcome {
	line := addr & h.lineMask
	if h.l1[core].Lookup(line, true, write) {
		return Outcome{Status: Hit, Latency: h.cfg.L1.Latency, Level: 1}
	}
	if h.l2[core].Lookup(line, true, write) {
		h.fillL1(core, line, write)
		h.train(now, core, line)
		return Outcome{Status: Hit, Latency: h.cfg.L2.Latency, Level: 2}
	}
	h.train(now, core, line)
	if h.llc.Lookup(line, true, write) {
		h.fillL2(now, core, line, false)
		h.fillL1(core, line, write)
		return Outcome{Status: Hit, Latency: h.cfg.LLC.Latency, Level: 3}
	}
	return h.missToMem(now, core, line, write, w)
}

// flakyMem is a MemPort whose accept/reject decisions come from a
// seeded RNG consumed one draw per call, so two hierarchies driven with
// identical access sequences see identical back pressure.
type flakyMem struct {
	rng    *rand.Rand
	reads  []fakeRead
	writes []uint64
	next   int
}

func (m *flakyMem) Read(now int64, addr uint64, src int, w Waiter) bool {
	if m.rng.Intn(4) == 0 {
		return false
	}
	m.reads = append(m.reads, fakeRead{addr, now, src, w})
	return true
}

func (m *flakyMem) Write(now int64, addr uint64, src int) bool {
	if m.rng.Intn(4) == 0 {
		return false
	}
	m.writes = append(m.writes, addr)
	return true
}

func (m *flakyMem) deliverOldest(now int64) bool {
	if m.next >= len(m.reads) {
		return false
	}
	r := m.reads[m.next]
	m.next++
	r.done.MemDone(now, 0.5, 0)
	return true
}

type countWaiter struct{ dones []int64 }

func (c *countWaiter) MemDone(doneCPU int64, _, _ float64) { c.dones = append(c.dones, doneCPU) }

// TestAccessMatchesReference drives the flattened Access and the
// composed reference walk with identical randomized access streams —
// retries, same-line repeats, cross-core sharing, prefetcher traffic,
// evictions and writeback back pressure included — and requires
// identical outcomes, per-level statistics, hierarchy counters and
// memory-port call sequences at every step.
func TestAccessMatchesReference(t *testing.T) {
	for _, tc := range []struct {
		name string
		pf   prefetch.Config
	}{
		{"no-prefetch", prefetch.Config{}},
		{"stream-prefetch", prefetch.DefaultConfig()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const cores = 3
			cfg := HierConfig{
				Cores:        cores,
				L1:           Config{Name: "L1", SizeBytes: 1 << 10, Ways: 2, LineBytes: 64, Latency: 4},
				L2:           Config{Name: "L2", SizeBytes: 4 << 10, Ways: 4, LineBytes: 64, Latency: 14},
				LLC:          Config{Name: "LLC", SizeBytes: 16 << 10, Ways: 4, LineBytes: 64, Latency: 44},
				MSHRs:        8,
				PerCoreMSHRs: 3,
				Prefetch:     tc.pf,
			}
			memA := &flakyMem{rng: rand.New(rand.NewSource(7))}
			memB := &flakyMem{rng: rand.New(rand.NewSource(7))}
			flat := MustNewHierarchy(cfg, memA)
			ref := MustNewHierarchy(cfg, memB)

			drive := rand.New(rand.NewSource(0x5eed))
			var waitA, waitB countWaiter
			for step := 0; step < 20_000; step++ {
				now := int64(step)
				core := drive.Intn(cores)
				// A small line pool with a bias toward recently used
				// lines: plenty of same-line repeats (the way hint) and
				// retried misses (the miss memo), plus conflict evictions.
				line := uint64(drive.Intn(512)) * 64
				if drive.Intn(3) == 0 {
					line = uint64(drive.Intn(8)) * 64
				}
				write := drive.Intn(4) == 0
				var wA, wB Waiter
				if !write {
					wA, wB = &waitA, &waitB
				}
				oA := flat.Access(now, core, line, write, wA)
				oB := accessRef(ref, now, core, line, write, wB)
				if oA != oB {
					t.Fatalf("step %d: outcome mismatch: flat %+v ref %+v", step, oA, oB)
				}
				flat.Tick(now)
				ref.Tick(now)
				if drive.Intn(3) == 0 {
					memA.deliverOldest(now)
					memB.deliverOldest(now)
				}
				if step%1000 == 0 {
					compareHier(t, step, flat, ref)
				}
			}
			// Drain every outstanding fill and compare the final state.
			for memA.deliverOldest(1 << 20) {
				memB.deliverOldest(1 << 20)
			}
			compareHier(t, -1, flat, ref)
			if len(memA.reads) != len(memB.reads) || len(memA.writes) != len(memB.writes) {
				t.Fatalf("memory traffic diverged: %d/%d reads, %d/%d writes",
					len(memA.reads), len(memB.reads), len(memA.writes), len(memB.writes))
			}
			for i := range memA.writes {
				if memA.writes[i] != memB.writes[i] {
					t.Fatalf("write %d: flat %#x ref %#x", i, memA.writes[i], memB.writes[i])
				}
			}
			for i := range memA.reads {
				if memA.reads[i].addr != memB.reads[i].addr || memA.reads[i].at != memB.reads[i].at {
					t.Fatalf("read %d: flat %#x@%d ref %#x@%d", i,
						memA.reads[i].addr, memA.reads[i].at, memB.reads[i].addr, memB.reads[i].at)
				}
			}
			if !reflect.DeepEqual(waitA.dones, waitB.dones) {
				t.Fatalf("waiter completion cycles diverged (%d vs %d entries)",
					len(waitA.dones), len(waitB.dones))
			}
		})
	}
}

func compareHier(t *testing.T, step int, flat, ref *Hierarchy) {
	t.Helper()
	for c := 0; c < flat.cfg.Cores; c++ {
		if flat.L1Stats(c) != ref.L1Stats(c) {
			t.Fatalf("step %d: core %d L1 stats: flat %+v ref %+v", step, c, flat.L1Stats(c), ref.L1Stats(c))
		}
		if flat.L2Stats(c) != ref.L2Stats(c) {
			t.Fatalf("step %d: core %d L2 stats: flat %+v ref %+v", step, c, flat.L2Stats(c), ref.L2Stats(c))
		}
	}
	if flat.LLCStats() != ref.LLCStats() {
		t.Fatalf("step %d: LLC stats: flat %+v ref %+v", step, flat.LLCStats(), ref.LLCStats())
	}
	if flat.Stats() != ref.Stats() {
		t.Fatalf("step %d: hierarchy stats: flat %+v ref %+v", step, flat.Stats(), ref.Stats())
	}
	if flat.OutstandingMisses() != ref.OutstandingMisses() {
		t.Fatalf("step %d: outstanding misses: flat %d ref %d", step,
			flat.OutstandingMisses(), ref.OutstandingMisses())
	}
}

// warmRef is the composed Touch/Insert warm walk the fused Warm
// replaces (the pair-per-level form it had before warmAccess).
func warmRef(h *Hierarchy, core int, addr uint64, write bool) {
	line := addr & h.lineMask
	if h.l1[core].Touch(line, write) {
		return
	}
	if !h.l2[core].Touch(line, false) && !h.llc.Touch(line, false) {
		h.llc.Insert(line, false, false)
	}
	if ev, ok := h.l2[core].Insert(line, false, false); ok && ev.Dirty {
		if !h.llc.Touch(ev.Addr, true) {
			h.llc.Insert(ev.Addr, true, false)
		}
	}
	if ev, ok := h.l1[core].Insert(line, write, false); ok && ev.Dirty {
		if !h.l2[core].Touch(ev.Addr, true) {
			if ev2, ok2 := h.l2[core].Insert(ev.Addr, true, false); ok2 && ev2.Dirty {
				if !h.llc.Touch(ev2.Addr, true) {
					h.llc.Insert(ev2.Addr, true, false)
				}
			}
		}
	}
}

// TestWarmMatchesReference drives the fused Warm and the composed
// reference walk with an identical randomized stream — dirty-eviction
// cascades included — then requires identical cache content, dirtiness
// and eviction statistics, and identical behavior of a demand-access
// phase over the warmed state (which is sensitive to LRU order).
func TestWarmMatchesReference(t *testing.T) {
	const cores = 2
	cfg := HierConfig{
		Cores:        cores,
		L1:           Config{Name: "L1", SizeBytes: 1 << 10, Ways: 2, LineBytes: 64, Latency: 4},
		L2:           Config{Name: "L2", SizeBytes: 4 << 10, Ways: 4, LineBytes: 64, Latency: 14},
		LLC:          Config{Name: "LLC", SizeBytes: 16 << 10, Ways: 4, LineBytes: 64, Latency: 44},
		MSHRs:        8,
		PerCoreMSHRs: 4,
	}
	memA := &flakyMem{rng: rand.New(rand.NewSource(9))}
	memB := &flakyMem{rng: rand.New(rand.NewSource(9))}
	fused := MustNewHierarchy(cfg, memA)
	ref := MustNewHierarchy(cfg, memB)

	drive := rand.New(rand.NewSource(0x9a12))
	for step := 0; step < 30_000; step++ {
		core := drive.Intn(cores)
		line := uint64(drive.Intn(600)) * 64
		write := drive.Intn(3) == 0 // plenty of dirty lines → cascades
		fused.Warm(core, line, write)
		warmRef(ref, core, line, write)
	}
	compareHier(t, 0, fused, ref)
	for c := 0; c < cores; c++ {
		for line := uint64(0); line < 600*64; line += 64 {
			if fused.l1[c].Contains(line) != ref.l1[c].Contains(line) {
				t.Fatalf("core %d line %#x: L1 presence diverged", c, line)
			}
			if fused.l2[c].Contains(line) != ref.l2[c].Contains(line) {
				t.Fatalf("core %d line %#x: L2 presence diverged", c, line)
			}
		}
	}
	for line := uint64(0); line < 600*64; line += 64 {
		if fused.llc.Contains(line) != ref.llc.Contains(line) {
			t.Fatalf("line %#x: LLC presence diverged", line)
		}
	}
	// A demand phase over the warmed state exposes any LRU-order or
	// dirtiness divergence the presence check can't see.
	for step := 0; step < 20_000; step++ {
		now := int64(step)
		core := drive.Intn(cores)
		line := uint64(drive.Intn(600)) * 64
		write := drive.Intn(4) == 0
		oA := fused.Access(now, core, line, write, nil)
		oB := accessRef(ref, now, core, line, write, nil)
		if oA != oB {
			t.Fatalf("demand step %d: outcome mismatch: fused %+v ref %+v", step, oA, oB)
		}
		fused.Tick(now)
		ref.Tick(now)
		if drive.Intn(3) == 0 {
			memA.deliverOldest(now)
			memB.deliverOldest(now)
		}
	}
	compareHier(t, -1, fused, ref)
}

// TestWarmPrivateMatchesWarm drives two hierarchies with the same
// round-robin warm stream: one through Warm directly, the other through
// the recorded form — WarmPrivate per item with the LLC operations
// replayed in the same global order via WarmLLC, the decomposition the
// concurrent prewarm path uses. State must match exactly, including
// dirty-writeback cascades and eviction statistics.
func TestWarmPrivateMatchesWarm(t *testing.T) {
	const cores = 3
	cfg := HierConfig{
		Cores:        cores,
		L1:           Config{Name: "L1", SizeBytes: 2 << 10, Ways: 2, LineBytes: 64, Latency: 4},
		L2:           Config{Name: "L2", SizeBytes: 8 << 10, Ways: 4, LineBytes: 64, Latency: 14},
		LLC:          Config{Name: "LLC", SizeBytes: 16 << 10, Ways: 4, LineBytes: 64, Latency: 44},
		MSHRs:        8,
		PerCoreMSHRs: 4,
	}
	direct := MustNewHierarchy(cfg, &flakyMem{rng: rand.New(rand.NewSource(9))})
	recorded := MustNewHierarchy(cfg, &flakyMem{rng: rand.New(rand.NewSource(9))})
	drive := rand.New(rand.NewSource(41))

	type item struct {
		core  int
		addr  uint64
		write bool
	}
	var ops []LLCOp
	for round := 0; round < 12_000; round++ {
		// One item per core per round, like prewarm's round-robin.
		items := make([]item, cores)
		for c := range items {
			items[c] = item{c, uint64(drive.Intn(500)) * 64, drive.Intn(3) == 0}
		}
		for _, it := range items {
			direct.Warm(it.core, it.addr, it.write)
		}
		// Recorded form: private phases first (per core), LLC replay in
		// the same (item, core) order afterwards.
		ops = ops[:0]
		for _, it := range items {
			ops = recorded.WarmPrivate(it.core, it.addr, it.write, ops)
		}
		for _, op := range ops {
			recorded.WarmLLC(op)
		}
		if round%4000 == 0 {
			compareHier(t, round, recorded, direct)
		}
	}
	compareHier(t, -1, recorded, direct)
	for line := uint64(0); line < 500*64; line += 64 {
		for c := 0; c < cores; c++ {
			if a, b := direct.l1[c].Contains(line), recorded.l1[c].Contains(line); a != b {
				t.Fatalf("L1[%d] diverges on %#x: direct %v recorded %v", c, line, a, b)
			}
			if a, b := direct.l2[c].Contains(line), recorded.l2[c].Contains(line); a != b {
				t.Fatalf("L2[%d] diverges on %#x: direct %v recorded %v", c, line, a, b)
			}
		}
		if a, b := direct.llc.Contains(line), recorded.llc.Contains(line); a != b {
			t.Fatalf("LLC diverges on %#x: direct %v recorded %v", line, a, b)
		}
	}
}
