package cache

import (
	"testing"

	"dramstacks/internal/prefetch"
)

// fakeMem is a scriptable MemPort: fills complete after latency cycles
// when the test calls deliver.
type fakeMem struct {
	latency   int64
	rejectRd  bool
	rejectWr  bool
	reads     []fakeRead
	writes    []uint64
	writeSrcs []int
	delivered int
}

type fakeRead struct {
	addr uint64
	at   int64
	src  int
	done Waiter
}

func (m *fakeMem) Read(now int64, addr uint64, src int, w Waiter) bool {
	if m.rejectRd {
		return false
	}
	m.reads = append(m.reads, fakeRead{addr, now, src, w})
	return true
}

// fnWaiter adapts a closure to the Waiter interface for tests.
type fnWaiter func(int64, float64)

func (f fnWaiter) MemDone(doneCPU int64, queueFrac, _ float64) { f(doneCPU, queueFrac) }

func (m *fakeMem) Write(now int64, addr uint64, src int) bool {
	if m.rejectWr {
		return false
	}
	m.writes = append(m.writes, addr)
	m.writeSrcs = append(m.writeSrcs, src)
	return true
}

// deliver completes the oldest outstanding read.
func (m *fakeMem) deliver(queueFrac float64) {
	r := m.reads[m.delivered]
	m.delivered++
	r.done.MemDone(r.at+m.latency, queueFrac, 0)
}

func testHier(t *testing.T, cores int, pf prefetch.Config) (*Hierarchy, *fakeMem) {
	t.Helper()
	mem := &fakeMem{latency: 100}
	cfg := HierConfig{
		Cores:        cores,
		L1:           Config{Name: "L1", SizeBytes: 1 << 10, Ways: 2, LineBytes: 64, Latency: 4},
		L2:           Config{Name: "L2", SizeBytes: 4 << 10, Ways: 4, LineBytes: 64, Latency: 14},
		LLC:          Config{Name: "LLC", SizeBytes: 16 << 10, Ways: 4, LineBytes: 64, Latency: 44},
		MSHRs:        8,
		PerCoreMSHRs: 4,
		Prefetch:     pf,
	}
	h, err := NewHierarchy(cfg, mem)
	if err != nil {
		t.Fatal(err)
	}
	return h, mem
}

func TestMissFillsAllLevels(t *testing.T) {
	h, mem := testHier(t, 1, prefetch.Config{})
	gotDone := int64(-1)
	out := h.Access(0, 0, 0x4000, false, fnWaiter(func(done int64, _ float64) { gotDone = done }))
	if out.Status != Pending {
		t.Fatalf("first access = %+v, want Pending", out)
	}
	if h.OutstandingMisses() != 1 {
		t.Fatalf("outstanding = %d", h.OutstandingMisses())
	}
	mem.deliver(0)
	if gotDone != 100 {
		t.Fatalf("completion cycle = %d, want 100", gotDone)
	}
	if h.Pending() {
		t.Error("hierarchy still pending after fill")
	}
	// Now resident everywhere: L1 hit.
	out = h.Access(200, 0, 0x4000, false, nil)
	if out.Status != Hit || out.Level != 1 || out.Latency != 4 {
		t.Errorf("post-fill access = %+v, want L1 hit", out)
	}
}

func TestMSHRMerging(t *testing.T) {
	h, mem := testHier(t, 2, prefetch.Config{})
	done1, done2 := false, false
	h.Access(0, 0, 0x8000, false, fnWaiter(func(int64, float64) { done1 = true }))
	out := h.Access(1, 1, 0x8000, false, fnWaiter(func(int64, float64) { done2 = true }))
	if out.Status != Pending {
		t.Fatalf("merged access = %+v", out)
	}
	if len(mem.reads) != 1 {
		t.Fatalf("memory reads = %d, want 1 (merged)", len(mem.reads))
	}
	if h.Stats().MSHRMerges != 1 {
		t.Errorf("merges = %d", h.Stats().MSHRMerges)
	}
	mem.deliver(0)
	if !done1 || !done2 {
		t.Error("not all waiters woken")
	}
}

func TestPerCoreMSHRLimit(t *testing.T) {
	h, _ := testHier(t, 2, prefetch.Config{})
	for i := 0; i < 4; i++ {
		out := h.Access(0, 0, uint64(0x10000+i*64), false, fnWaiter(func(int64, float64) {}))
		if out.Status != Pending {
			t.Fatalf("access %d = %+v", i, out)
		}
	}
	if out := h.Access(0, 0, 0x20000, false, fnWaiter(func(int64, float64) {})); out.Status != Retry {
		t.Errorf("5th miss from one core = %+v, want Retry (per-core limit 4)", out)
	}
	// The other core still has budget.
	if out := h.Access(0, 1, 0x30000, false, fnWaiter(func(int64, float64) {})); out.Status != Pending {
		t.Errorf("other core's miss = %+v, want Pending", out)
	}
}

func TestGlobalMSHRLimit(t *testing.T) {
	h, _ := testHier(t, 4, prefetch.Config{})
	n := 0
	for core := 0; core < 4; core++ {
		for i := 0; i < 2; i++ {
			out := h.Access(0, core, uint64(0x40000+(core*2+i)*64), false, fnWaiter(func(int64, float64) {}))
			if out.Status == Pending {
				n++
			}
		}
	}
	if n != 8 {
		t.Fatalf("filled %d MSHRs, want 8", n)
	}
	if out := h.Access(0, 3, 0x90000, false, fnWaiter(func(int64, float64) {})); out.Status != Retry {
		t.Errorf("9th miss = %+v, want Retry (global limit 8)", out)
	}
}

func TestControllerBackpressureRetry(t *testing.T) {
	h, mem := testHier(t, 1, prefetch.Config{})
	mem.rejectRd = true
	out := h.Access(0, 0, 0x1000, false, fnWaiter(func(int64, float64) {}))
	if out.Status != Retry {
		t.Fatalf("access with rejecting port = %+v, want Retry", out)
	}
	if h.OutstandingMisses() != 0 {
		t.Error("MSHR leaked on rejected read")
	}
	mem.rejectRd = false
	if out := h.Access(1, 0, 0x1000, false, fnWaiter(func(int64, float64) {})); out.Status != Pending {
		t.Errorf("retried access = %+v", out)
	}
}

func TestStoreRFOMakesLineDirtyAndWritebackReachesMemory(t *testing.T) {
	h, mem := testHier(t, 1, prefetch.Config{})
	// Store to a line: RFO read.
	h.Access(0, 0, 0x0, true, fnWaiter(func(int64, float64) {}))
	mem.deliver(0)
	if len(mem.writes) != 0 {
		t.Fatal("premature writeback")
	}
	// Evict it from everywhere by filling the same sets. L1: 2 ways,
	// L2: 4, LLC: 4. Insert enough conflicting lines to push the dirty
	// line out of the LLC (set stride 16KB/4ways/64B=64 sets -> 4 KB).
	for i := 1; i <= 8; i++ {
		h.Access(int64(i*10), 0, uint64(i)*4096, false, fnWaiter(func(int64, float64) {}))
		mem.deliver(0)
	}
	if len(mem.writes) == 0 {
		t.Fatal("dirty line never written back to memory")
	}
	if mem.writes[0] != 0 {
		t.Errorf("writeback addr = %#x, want 0", mem.writes[0])
	}
	if h.Stats().WritebacksToMem == 0 {
		t.Error("writeback not counted")
	}
}

func TestWritebackBackpressureQueues(t *testing.T) {
	h, mem := testHier(t, 1, prefetch.Config{})
	h.Access(0, 0, 0x0, true, fnWaiter(func(int64, float64) {}))
	mem.deliver(0)
	mem.rejectWr = true
	for i := 1; i <= 8; i++ {
		h.Access(int64(i*10), 0, uint64(i)*4096, false, fnWaiter(func(int64, float64) {}))
		mem.deliver(0)
	}
	if len(mem.writes) != 0 {
		t.Fatal("write accepted while rejecting")
	}
	if !h.Pending() {
		t.Fatal("pending writeback not tracked")
	}
	mem.rejectWr = false
	h.Tick(1000)
	if len(mem.writes) == 0 {
		t.Error("queued writeback not retried")
	}
}

func TestPrefetchFillsL2NotL1(t *testing.T) {
	h, mem := testHier(t, 1, prefetch.Config{Streams: 4, Depth: 2, Degree: 2})
	// Two sequential L2 misses train the streamer; the prefetches fetch
	// ahead.
	h.Access(0, 0, 0*64, false, fnWaiter(func(int64, float64) {}))
	h.Access(1, 0, 1*64, false, fnWaiter(func(int64, float64) {}))
	if h.Stats().PrefetchesToMem == 0 {
		t.Fatal("no prefetches issued")
	}
	for mem.delivered < len(mem.reads) {
		mem.deliver(0)
	}
	// Line 2 was prefetched: present in L2 (hit level 2), not L1.
	out := h.Access(100, 0, 2*64, false, nil)
	if out.Status != Hit || out.Level != 2 {
		t.Errorf("prefetched line access = %+v, want L2 hit", out)
	}
	if h.L2Stats(0).PrefetchHits == 0 {
		t.Error("prefetch hit not counted")
	}
}

func TestPrefetchDropsOnHazard(t *testing.T) {
	h, _ := testHier(t, 1, prefetch.Config{})
	// Exhaust per-core MSHRs with demand misses.
	for i := 0; i < 4; i++ {
		h.Access(0, 0, uint64(0x50000+i*64), false, fnWaiter(func(int64, float64) {}))
	}
	h.Prefetch(0, 0, 0x60000)
	if h.Stats().PrefetchDropped != 1 {
		t.Errorf("prefetch dropped = %d, want 1", h.Stats().PrefetchDropped)
	}
	if h.Stats().PrefetchesToMem != 0 {
		t.Error("prefetch issued despite hazard")
	}
}

func TestHierConfigValidate(t *testing.T) {
	good := DefaultHierConfig(4)
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []func(*HierConfig){
		func(c *HierConfig) { c.Cores = 0 },
		func(c *HierConfig) { c.L1.SizeBytes = 0 },
		func(c *HierConfig) { c.L2.LineBytes = 32 },
		func(c *HierConfig) { c.MSHRs = 0 },
		func(c *HierConfig) { c.PerCoreMSHRs = 0 },
	}
	for i, mutate := range bad {
		cfg := DefaultHierConfig(4)
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestDemandPromotesPendingPrefetch(t *testing.T) {
	h, mem := testHier(t, 1, prefetch.Config{})
	h.Prefetch(0, 0, 0x7000)
	if h.Stats().PrefetchesToMem != 1 {
		t.Fatal("prefetch not issued")
	}
	woken := false
	out := h.Access(1, 0, 0x7000, false, fnWaiter(func(int64, float64) { woken = true }))
	if out.Status != Pending {
		t.Fatalf("demand on pending prefetch = %+v", out)
	}
	mem.deliver(0)
	if !woken {
		t.Error("demand waiter not woken by prefetch fill")
	}
	// Because a demand arrived, the fill also goes into L1.
	if got := h.Access(300, 0, 0x7000, false, nil); got.Level != 1 {
		t.Errorf("post-fill level = %d, want 1 (promoted)", got.Level)
	}
}
