// Bankindexing reproduces the paper's Fig. 6 study: when a workload
// shows the "large bank-idle + large queueing" signature in its stacks,
// cache-line-interleaved bank indexing (Fig. 5b) spreads consecutive
// lines over all of the device's banks. Bandwidth rises and queueing
// falls — paid for with page locality (the act/pre components grow).
//
// The bank count is a property of the DRAM standard, not a constant:
// the paper's DDR4-2400 baseline has 16 banks per channel, but the
// registry's other presets differ (DDR5-4800 has 32), so everything
// below reads geometry from the preset rather than hardcoding it.
package main

import (
	"fmt"
	"log"
	"os"

	"dramstacks/internal/dram/standard"
	"dramstacks/internal/exp"
	"dramstacks/internal/memctrl"
	"dramstacks/internal/sim"
	"dramstacks/internal/stacks"
	"dramstacks/internal/viz"
	"dramstacks/internal/workload"
)

func main() {
	// The paper's baseline standard, via the registry: geometry (bank
	// count, page size) comes from the preset, not from literals.
	std := standard.Default()
	fmt.Printf("standard %s: %d banks per channel, %d B pages\n\n",
		std.Name, std.BanksPerChannel(), std.Geometry.RowBytes())

	// The paper's first conflict case: a sequential stream with 50%
	// stores. The write-back stream trails the read stream by exactly
	// the LLC capacity, landing in the same banks on different rows.
	var rows []exp.Row
	for _, m := range []sim.Mapping{sim.MapDefault, sim.MapInterleaved} {
		res, err := exp.RunSynth(exp.SynthSpec{
			Pattern:   workload.Sequential,
			Cores:     1,
			StoreFrac: 0.5,
			Map:       m,
			Policy:    memctrl.OpenPage,
			Budget:    300_000,
			Prewarm:   1 << 20,
		})
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, exp.Row{Label: "seq w50 1c " + m.String(), Res: res})
	}

	labels, bw, lat := exp.Stacks(rows)
	geo := rows[0].Res.Cfg.Geom
	viz.BandwidthChart(os.Stdout, labels, bw, geo)
	fmt.Println()
	viz.LatencyChart(os.Stdout, labels, lat, geo)

	d, i := rows[0].Res, rows[1].Res
	dl, il := d.LatNS(), i.LatNS()
	fmt.Printf("\ninterleaving over %d banks: %.2f -> %.2f GB/s; queue+writeburst %.1f -> %.1f ns; act/pre %.1f -> %.1f ns\n",
		std.BanksPerChannel(),
		d.AchievedGBps(), i.AchievedGBps(),
		dl[stacks.LatQueue]+dl[stacks.LatWriteBurst], il[stacks.LatQueue]+il[stacks.LatWriteBurst],
		dl[stacks.LatPreAct], il[stacks.LatPreAct])
	fmt.Println("the stacks predicted this: the default run showed a large bank-idle")
	fmt.Println("component with large queueing latency - the signature of bank conflicts,")
	fmt.Println("not of a too-low request rate (paper §VII-D).")
}
