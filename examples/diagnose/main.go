// Diagnose demonstrates the point of the stacks: run a workload, let
// the stacks name the bottleneck (paper §IV/§V interpretation rules),
// apply the suggested remedy, and verify the improvement — the loop the
// paper walks through manually in §VII-D.
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"dramstacks/internal/exp"
	"dramstacks/internal/sim"
	"dramstacks/internal/stacks"
	"dramstacks/internal/viz"
	"dramstacks/internal/workload"
)

func run(m sim.Mapping) *sim.Result {
	res, err := exp.RunSynth(exp.SynthSpec{
		Pattern:   workload.Sequential,
		Cores:     1,
		StoreFrac: 0.5, // the paper's bank-conflict case (Fig. 6, left)
		Map:       m,
		Budget:    300_000,
		Prewarm:   1 << 20,
	})
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	fmt.Println("step 1: run the workload (sequential stream, 50% stores, 1 core)")
	before := run(sim.MapDefault)
	geo := before.Cfg.Geom
	viz.BandwidthChart(os.Stdout, []string{"before"}, []stacks.BandwidthStack{before.BW}, geo)

	fmt.Println("\nstep 2: let the stacks diagnose it")
	advice := stacks.Diagnose(before.BW, before.Lat, geo)
	for _, a := range advice {
		fmt.Printf("  %s\n", a)
	}
	if len(advice) == 0 {
		fmt.Println("  nothing actionable (unexpected for this workload)")
		return
	}

	wantsInterleaving := false
	for _, a := range advice {
		if strings.Contains(a.Action, "interleaving") {
			wantsInterleaving = true
		}
	}
	if !wantsInterleaving {
		fmt.Println("\n(no interleaving advice: stacks point elsewhere, stopping)")
		return
	}

	fmt.Println("\nstep 3: apply the remedy (cache-line-interleaved indexing, Fig. 5b)")
	after := run(sim.MapInterleaved)
	viz.BandwidthChart(os.Stdout, []string{"after"}, []stacks.BandwidthStack{after.BW}, geo)

	fmt.Printf("\nresult: %.2f -> %.2f GB/s (%.0f%%), read latency %.1f -> %.1f ns\n",
		before.AchievedGBps(), after.AchievedGBps(),
		100*(after.AchievedGBps()/before.AchievedGBps()-1),
		before.Lat.AvgTotalNS(geo), after.Lat.AvgTotalNS(geo))
	fmt.Println("the act/pre components grew (page locality was the price), but the")
	fmt.Println("queueing and writeburst latency the stacks flagged are gone - exactly")
	fmt.Println("the paper's Fig. 6 outcome.")
}
