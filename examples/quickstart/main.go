// Quickstart: simulate a memory-bound workload on the paper's machine
// (DDR4-2400, Skylake-like cores) and print its DRAM bandwidth and
// latency stacks — the fastest way to see where the 19.2 GB/s go.
package main

import (
	"fmt"
	"log"
	"os"

	"dramstacks/internal/dram/standard"
	"dramstacks/internal/sim"
	"dramstacks/internal/stacks"
	"dramstacks/internal/viz"
	"dramstacks/internal/workload"
)

func main() {
	// One core streaming sequentially, one core chasing random lines.
	seq := workload.DefaultSequential()
	rnd := workload.DefaultRandom()
	rnd.BaseAddr = 512 << 20 // separate regions

	sys, err := sim.New(standard.Default(),
		sim.WithSources(
			workload.MustSynthetic(seq),
			workload.MustSynthetic(rnd),
		),
		sim.WithMaxMemCycles(300_000), // 0.25 ms of DDR4-2400 time
		sim.WithPrewarmOps(1<<20),     // start with warm caches
	)
	if err != nil {
		log.Fatal(err)
	}
	res := sys.Run()
	if len(res.Violations) > 0 {
		log.Fatalf("DRAM timing violation: %v", res.Violations[0])
	}

	geom := res.Cfg.Geom
	fmt.Printf("simulated %.3f ms: %.2f GB/s achieved of %.1f peak\n\n",
		res.RuntimeMS(), res.AchievedGBps(), geom.PeakBandwidthGBs())

	viz.BandwidthChart(os.Stdout, []string{"seq+random 2c"},
		[]stacks.BandwidthStack{res.BW}, geom)
	fmt.Println()
	viz.LatencyChart(os.Stdout, []string{"seq+random 2c"},
		[]stacks.LatencyStack{res.Lat}, geom)

	g := res.BWGBps()
	fmt.Printf("\nreading the stack: %.1f GB/s is real traffic, %.1f is refresh,\n",
		g[stacks.BWRead]+g[stacks.BWWrite], g[stacks.BWRefresh])
	fmt.Printf("%.1f is lost to timing constraints, %.1f to unused bank parallelism,\n",
		g[stacks.BWConstraints], g[stacks.BWBankIdle])
	fmt.Printf("and %.1f GB/s of the chip was simply idle - the cores did not ask for more.\n",
		g[stacks.BWIdle])
}
