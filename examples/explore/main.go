// Explore sweeps the memory controller's design space (page policy ×
// bank indexing) for a given workload and ranks the configurations —
// the design-space-exploration use the paper motivates for hardware
// architects (§I: "it is often not obvious to hardware architects or
// software developers how higher bandwidth usage can be achieved").
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"dramstacks/internal/exp"
	"dramstacks/internal/memctrl"
	"dramstacks/internal/sim"
	"dramstacks/internal/stacks"
	"dramstacks/internal/workload"
)

func main() {
	pattern := flag.String("pattern", "seq", "seq, random or strided")
	stores := flag.Float64("stores", 0.5, "store fraction")
	cores := flag.Int("cores", 1, "cores")
	flag.Parse()

	pat := map[string]workload.Pattern{
		"seq": workload.Sequential, "random": workload.Random, "strided": workload.Strided,
	}[*pattern]

	type point struct {
		policy memctrl.PagePolicy
		m      sim.Mapping
	}
	var points []point
	for _, pol := range []memctrl.PagePolicy{memctrl.OpenPage, memctrl.ClosedPage} {
		for _, m := range []sim.Mapping{sim.MapDefault, sim.MapInterleaved, sim.MapXOR} {
			points = append(points, point{pol, m})
		}
	}

	type outcome struct {
		point
		gbps  float64
		latNS float64
		hint  string
	}
	var results []outcome
	for _, p := range points {
		res, err := exp.RunSynth(exp.SynthSpec{
			Pattern: pat, Cores: *cores, StoreFrac: *stores,
			Map: p.m, Policy: p.policy,
			Budget: 250_000, Prewarm: 1 << 20,
		})
		if err != nil {
			log.Fatal(err)
		}
		hint := "-"
		if advice := stacks.Diagnose(res.BW, res.Lat, res.Cfg.Geom); len(advice) > 0 {
			hint = advice[0].Component
		}
		results = append(results, outcome{
			point: p,
			gbps:  res.AchievedGBps(),
			latNS: res.Lat.AvgTotalNS(res.Cfg.Geom),
			hint:  hint,
		})
	}

	sort.Slice(results, func(i, j int) bool { return results[i].gbps > results[j].gbps })
	fmt.Printf("design space for %s (stores %.0f%%, %d core(s)):\n\n", pat, *stores*100, *cores)
	fmt.Printf("%-8s %-5s %10s %10s   %s\n", "policy", "map", "GB/s", "lat-ns", "top bottleneck")
	for _, r := range results {
		fmt.Printf("%-8s %-5s %10.2f %10.1f   %s\n",
			r.policy, r.m, r.gbps, r.latNS, r.hint)
	}
	best := results[0]
	fmt.Printf("\nbest: %s pages with %s indexing (%.2f GB/s)\n", best.policy, best.m, best.gbps)
}
