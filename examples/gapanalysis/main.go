// Gapanalysis runs a GAP graph kernel on the simulated machine, shows
// its through-time bandwidth behavior (the paper's Fig. 7 view), and
// then uses the 1-core bandwidth stack to extrapolate the 8-core
// bandwidth with both the naive and the stack-based method (Fig. 9).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"dramstacks/internal/exp"
	"dramstacks/internal/extrapolate"
	"dramstacks/internal/stacks"
	"dramstacks/internal/viz"
)

func main() {
	bench := flag.String("bench", "bfs", "GAP kernel: bc bfs cc pr sssp tc")
	scale := flag.Int("scale", 15, "Kronecker graph scale")
	flag.Parse()

	// 8-core run with through-time sampling.
	spec := exp.DefaultGap(*bench, 8)
	spec.Scale = *scale
	spec.Budget = 600_000
	spec.Sample = 20_000
	r8, err := exp.RunGap(spec)
	if err != nil {
		log.Fatal(err)
	}
	geo := r8.Cfg.Geom

	fmt.Printf("%s on 8 cores: %.2f GB/s, %.1f ns avg read latency, %.3f ms simulated\n\n",
		*bench, r8.AchievedGBps(), r8.Lat.AvgTotalNS(geo), r8.RuntimeMS())

	viz.ThroughTime(os.Stdout, r8.BWSamples, geo)
	fmt.Println()
	viz.BandwidthChart(os.Stdout, []string{*bench + " 8c"},
		[]stacks.BandwidthStack{r8.BW}, geo)
	fmt.Println()
	viz.LatencyChart(os.Stdout, []string{*bench + " 8c"},
		[]stacks.LatencyStack{r8.Lat}, geo)

	// 1-core run, then extrapolate to 8 cores (Fig. 9).
	one := exp.DefaultGap(*bench, 1)
	one.Scale = *scale
	one.Budget = 2_400_000
	one.Sample = 50_000
	r1, err := exp.RunGap(one)
	if err != nil {
		log.Fatal(err)
	}
	p := extrapolate.Prediction{
		Name:     *bench,
		Measured: r8.AchievedGBps(),
		Naive:    extrapolate.NaiveSamples(r1.BWSamples, 8, geo),
		Stack:    extrapolate.StackSamples(r1.BWSamples, 8, geo),
	}
	fmt.Printf("\nextrapolating 1c (%.2f GB/s) to 8 cores:\n", r1.AchievedGBps())
	fmt.Printf("  measured    %6.2f GB/s\n", p.Measured)
	fmt.Printf("  naive       %6.2f GB/s (%.0f%% error)\n", p.Naive, 100*p.NaiveErr())
	fmt.Printf("  stack-based %6.2f GB/s (%.0f%% error)\n", p.Stack, 100*p.StackErr())
}
