// Pagepolicy reproduces the paper's Fig. 4 scenario: how the open and
// closed page policies change the bandwidth and latency stacks for a
// page-friendly (sequential) and a page-hostile (random) access pattern.
// The stacks explain the result: the sequential pattern loses page hits
// and gains queueing under the closed policy, while the random pattern
// gains bandwidth because the precharge moves off the critical path.
package main

import (
	"fmt"
	"log"
	"os"

	"dramstacks/internal/exp"
	"dramstacks/internal/memctrl"
	"dramstacks/internal/viz"
	"dramstacks/internal/workload"
)

func main() {
	var rows []exp.Row
	for _, pat := range []workload.Pattern{workload.Sequential, workload.Random} {
		for _, pol := range []memctrl.PagePolicy{memctrl.OpenPage, memctrl.ClosedPage} {
			res, err := exp.RunSynth(exp.SynthSpec{
				Pattern: pat,
				Cores:   2,
				Policy:  pol,
				Budget:  300_000,
				Prewarm: 1 << 20,
			})
			if err != nil {
				log.Fatal(err)
			}
			rows = append(rows, exp.Row{
				Label: fmt.Sprintf("%s %s", pat, pol),
				Res:   res,
			})
		}
	}

	labels, bw, lat := exp.Stacks(rows)
	geo := rows[0].Res.Cfg.Geom
	viz.BandwidthChart(os.Stdout, labels, bw, geo)
	fmt.Println()
	viz.LatencyChart(os.Stdout, labels, lat, geo)

	fmt.Println("\nwhat to look for (paper §VII-C):")
	fmt.Printf(" * sequential: closed pages cost bandwidth (%.2f -> %.2f GB/s) and the\n",
		rows[0].Res.AchievedGBps(), rows[1].Res.AchievedGBps())
	fmt.Println("   latency increase lands in the queue component, not act/pre - followers")
	fmt.Println("   wait for the re-activation of the row the policy closed too early.")
	fmt.Printf(" * random: closed pages help (%.2f -> %.2f GB/s) and the act/pre latency\n",
		rows[2].Res.AchievedGBps(), rows[3].Res.AchievedGBps())
	fmt.Println("   roughly halves - the precharge happens before the next request arrives.")
	for i := range rows {
		fmt.Printf(" * %-18s page hit rate %5.1f%%\n",
			labels[i], 100*rows[i].Res.CtrlStats.PageHitRate())
	}
}
