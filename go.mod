module dramstacks

go 1.24
