module dramstacks

go 1.22
